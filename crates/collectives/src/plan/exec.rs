//! Executing a compiled [`RankPlan`] against any [`Comm`].
//!
//! The executor replaces per-call algorithm interpretation on the hot path:
//! peers, tags, offsets and buffer routing were all decided at compile time,
//! so running a plan is a single linear walk over its ops.  Tags are rebased
//! by the invocation tag and shared-region names are namespaced per
//! invocation, so one cached plan can be executed any number of times on the
//! same communicator without collisions.
//!
//! Scratch buffers (materialized payloads, value slots, deferred output
//! writes) come from a [`BufferArena`]: pass one that outlives the call
//! ([`execute_rank_plan_reusing`]) and repeat executions of the same shape
//! stop allocating entirely — the persistent-collective steady state.

use crate::comm::{Comm, ReduceFn};
use crate::compress::{compress, decompress};
use crate::plan::arena::BufferArena;
use crate::plan::ir::{Fidelity, IoShape, PlanOp, RankPlan, Src, SrcSeg};

/// The caller buffers a plan execution operates on.
///
/// For in/out collectives (bcast, allreduce) pass the single caller buffer
/// as `recvbuf` and leave `sendbuf` as `None`; the plan's
/// [`crate::plan::ir::IoShape::inout`] flag makes the executor read
/// [`SrcSeg::SendBuf`] from the receive buffer's pre-output contents (output
/// writes are deferred to the end of the run, so the input bytes stay
/// readable throughout).
#[derive(Debug, Default)]
pub struct PlanIo<'a> {
    /// The caller's send buffer, if the plan declares one.
    pub sendbuf: Option<&'a [u8]>,
    /// The caller's receive (or in/out) buffer, if the plan declares one.
    pub recvbuf: Option<&'a mut [u8]>,
}

/// Execute `plan` on `comm` with the invocation tag `tag`.
///
/// `op` must be `Some` when the plan contains reductions
/// ([`crate::plan::ir::IoShape::needs_reduce_op`]).
///
/// # Panics
///
/// Panics when the plan is schedule-fidelity, the buffers disagree with the
/// plan's [`crate::plan::ir::IoShape`], the communicator's coordinates
/// disagree with the plan's, or a required reduction operator is missing —
/// all of which are caller bugs, not data-dependent failures.
pub fn execute_rank_plan<C: Comm>(
    plan: &RankPlan,
    comm: &C,
    io: PlanIo<'_>,
    op: Option<&ReduceFn<'_>>,
    tag: u64,
) {
    let mut arena = BufferArena::new();
    execute_rank_plan_reusing(plan, comm, io, op, tag, &mut arena);
}

/// Resolve a symbolic source into `out` (cleared first) against the caller
/// buffers and the runtime values — shared by the blocking executor and the
/// cursor.
pub(crate) fn materialize_into(
    out: &mut Vec<u8>,
    src: &Src,
    io: &IoShape,
    sendbuf: Option<&[u8]>,
    recvbuf: Option<&[u8]>,
    vals: &[Option<Vec<u8>>],
) {
    out.clear();
    for seg in &src.segs {
        match seg {
            SrcSeg::SendBuf { offset, len } => {
                let buf: &[u8] = if io.inout {
                    recvbuf.expect("in/out buffer present")
                } else {
                    sendbuf.expect("send buffer present")
                };
                out.extend_from_slice(&buf[*offset..*offset + *len]);
            }
            SrcSeg::RecvInit { offset, len } => {
                let buf = recvbuf.expect("receive buffer present");
                out.extend_from_slice(&buf[*offset..*offset + *len]);
            }
            SrcSeg::Val { id, offset, len } => {
                let val = vals[*id as usize]
                    .as_deref()
                    .expect("value defined before use");
                out.extend_from_slice(&val[*offset..*offset + *len]);
            }
            SrcSeg::Lit(data) => out.extend_from_slice(data),
            SrcSeg::Opaque { .. } => unreachable!("exec-fidelity plans have no opaque bytes"),
        }
    }
}

/// Store `data` into value slot `dst`, releasing any buffer the slot held.
pub(crate) fn store_val(
    vals: &mut [Option<Vec<u8>>],
    arena: &mut BufferArena,
    dst: u32,
    data: Vec<u8>,
) {
    if let Some(old) = vals[dst as usize].replace(data) {
        arena.release(old);
    }
}

/// As [`execute_rank_plan`], drawing every scratch buffer from `arena`.
///
/// Passing the same arena across invocations makes the steady state
/// allocation-free: buffers released at the end of one run (value slots,
/// deferred output writes, received payloads) are reacquired by the next.
/// Buffers a run sends away through the fabric are balanced, for symmetric
/// collectives, by the received payloads it releases.
pub fn execute_rank_plan_reusing<C: Comm>(
    plan: &RankPlan,
    comm: &C,
    io: PlanIo<'_>,
    op: Option<&ReduceFn<'_>>,
    tag: u64,
    arena: &mut BufferArena,
) {
    assert_eq!(
        plan.fidelity,
        Fidelity::Exec,
        "schedule-fidelity plans cannot be executed"
    );
    assert_eq!(comm.rank(), plan.rank, "plan compiled for a different rank");
    assert_eq!(
        comm.topology(),
        plan.topology,
        "plan compiled for a different topology"
    );
    let PlanIo {
        sendbuf,
        mut recvbuf,
    } = io;
    // When a layout is present the caller's buffer spans the layout extent;
    // otherwise it is exactly the packed length the plan was recorded with.
    let expect_send = if plan.io.inout { None } else { plan.io.sendbuf };
    assert_eq!(
        sendbuf.map(<[u8]>::len),
        expect_send.map(|len| plan.io.send_layout.map_or(len, |l| l.extent())),
        "send buffer does not match the plan's shape"
    );
    assert_eq!(
        recvbuf.as_deref().map(<[u8]>::len),
        plan.io
            .recvbuf
            .map(|len| plan.io.recv_layout.map_or(len, |l| l.extent())),
        "receive buffer does not match the plan's shape"
    );
    if plan.io.needs_reduce_op {
        assert!(op.is_some(), "plan requires a reduction operator");
    }

    // Pack strided caller buffers into contiguous scratch: the plan body was
    // recorded against packed bytes and never sees a gap byte.
    let mut send_stage: Option<Vec<u8>> = None;
    if let (Some(layout), Some(buf)) = (plan.io.send_layout, sendbuf) {
        let mut stage = arena.acquire(layout.packed_len());
        layout.pack_bytes(buf, &mut stage);
        send_stage = Some(stage);
    }
    let mut recv_stage: Option<Vec<u8>> = None;
    if let (Some(layout), Some(buf)) = (plan.io.recv_layout, recvbuf.as_deref()) {
        let mut stage = arena.acquire(layout.packed_len());
        layout.pack_bytes(buf, &mut stage);
        recv_stage = Some(stage);
    }
    let sendbuf = send_stage.as_deref().or(sendbuf);
    let recv_view = recv_stage.as_deref().or(recvbuf.as_deref());

    // Per-invocation namespace for shared regions: deterministic across
    // ranks (every rank derives the same instance name from the same
    // recorded name and tag), unique across invocations.
    let names: Vec<String> = plan.names.iter().map(|n| format!("pl{tag}.{n}")).collect();

    let mut vals: Vec<Option<Vec<u8>>> = vec![None; plan.val_lens.len()];
    // Output writes are deferred so that SendBuf/RecvInit reads always see
    // the caller's pre-execution bytes, even when input and output alias.
    let mut pending_out: Vec<(usize, Vec<u8>)> = Vec::new();

    for plan_op in &plan.ops {
        match plan_op {
            PlanOp::SharedAlloc { name, len } => {
                comm.shared_alloc(&names[*name as usize], *len);
            }
            PlanOp::SharedPublish { name, src } => {
                let mut data = arena.acquire(src.len());
                materialize_into(&mut data, src, &plan.io, sendbuf, recv_view, &vals);
                comm.shared_publish(&names[*name as usize], &data);
                arena.release(data);
            }
            PlanOp::SharedCollect { name, len, dst } => {
                let mut data = arena.acquire(*len);
                comm.shared_collect_into(&names[*name as usize], *len, &mut data);
                store_val(&mut vals, arena, *dst, data);
            }
            PlanOp::SharedWrite {
                owner_local,
                name,
                offset,
                src,
            } => {
                let mut data = arena.acquire(src.len());
                materialize_into(&mut data, src, &plan.io, sendbuf, recv_view, &vals);
                comm.shared_write(*owner_local, &names[*name as usize], *offset, &data);
                arena.release(data);
            }
            PlanOp::SharedRead {
                owner_local,
                name,
                offset,
                len,
                dst,
            } => {
                let mut data = arena.acquire(*len);
                comm.shared_read_into(
                    *owner_local,
                    &names[*name as usize],
                    *offset,
                    *len,
                    &mut data,
                );
                store_val(&mut vals, arena, *dst, data);
            }
            PlanOp::Send { dest, tag: t, src } => {
                let mut data = arena.acquire(src.len());
                materialize_into(&mut data, src, &plan.io, sendbuf, recv_view, &vals);
                // The buffer moves into the fabric and on to the peer, whose
                // receive will feed it into *its* arena.
                comm.send_owned(*dest, tag + t, data);
            }
            PlanOp::Recv {
                source,
                tag: t,
                len,
                dst,
            } => {
                let data = comm.recv(*source, tag + t, *len);
                store_val(&mut vals, arena, *dst, data);
            }
            PlanOp::Compress {
                dest,
                tag: t,
                src,
                codec,
                ..
            } => {
                let mut data = arena.acquire(src.len());
                materialize_into(&mut data, src, &plan.io, sendbuf, recv_view, &vals);
                let frame = compress(&data, *codec);
                arena.release(data);
                comm.send_owned(*dest, tag + t, frame);
            }
            PlanOp::Decompress {
                source,
                tag: t,
                raw_len,
                dst,
                codec,
                ..
            } => {
                // The frame's length depends on the sender's payload, so the
                // receive is unsized; the decoded length is asserted instead.
                let frame = comm.recv_unsized(*source, tag + t);
                let data = decompress(&frame, *raw_len, *codec);
                store_val(&mut vals, arena, *dst, data);
            }
            PlanOp::SendFromShared {
                owner_local,
                name,
                offset,
                len,
                dest,
                tag: t,
            } => {
                comm.send_from_shared(
                    *owner_local,
                    &names[*name as usize],
                    *offset,
                    *len,
                    *dest,
                    tag + t,
                );
            }
            PlanOp::RecvIntoShared {
                owner_local,
                name,
                offset,
                source,
                tag: t,
                len,
            } => {
                comm.recv_into_shared(
                    *owner_local,
                    &names[*name as usize],
                    *offset,
                    *source,
                    tag + t,
                    *len,
                );
            }
            PlanOp::NodeBarrier => comm.node_barrier(),
            PlanOp::Reduce { dst, acc, other } => {
                let mut acc_bytes = arena.acquire(acc.len());
                materialize_into(&mut acc_bytes, acc, &plan.io, sendbuf, recv_view, &vals);
                let mut other_bytes = arena.acquire(other.len());
                materialize_into(&mut other_bytes, other, &plan.io, sendbuf, recv_view, &vals);
                let op = op.expect("plan requires a reduction operator");
                op(&mut acc_bytes, &other_bytes);
                arena.release(other_bytes);
                store_val(&mut vals, arena, *dst, acc_bytes);
            }
            PlanOp::CopyOut { offset, src } => {
                let mut data = arena.acquire(src.len());
                materialize_into(&mut data, src, &plan.io, sendbuf, recv_view, &vals);
                pending_out.push((*offset, data));
            }
            PlanOp::ChargeCopy { bytes } => comm.charge_copy(*bytes),
            PlanOp::ChargeReduce { bytes } => comm.charge_reduce(*bytes),
            PlanOp::Delay { nanos } => comm.delay(*nanos),
        }
    }

    if !pending_out.is_empty() {
        let out: &mut [u8] = match recv_stage.as_mut() {
            Some(stage) => stage,
            None => recvbuf.as_deref_mut().expect("receive buffer present"),
        };
        for (offset, data) in pending_out {
            out[offset..offset + data.len()].copy_from_slice(&data);
            arena.release(data);
        }
    }
    // Scatter staged output back into the caller's strided buffer, leaving
    // the gap bytes untouched, and return the scratch to the arena.
    if let Some(stage) = recv_stage.take() {
        let layout = plan.io.recv_layout.expect("recv staging implies a layout");
        layout.unpack_bytes(&stage, recvbuf.expect("receive buffer present"));
        arena.release(stage);
    }
    if let Some(stage) = send_stage.take() {
        arena.release(stage);
    }
    for slot in &mut vals {
        if let Some(buf) = slot.take() {
            arena.release(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ThreadComm;
    use crate::plan::ir::{IoShape, ValId};
    use crate::plan::record::{assemble, PlanComm, EXEC_PASSES};
    use pip_runtime::{Cluster, Topology};

    /// Compile a two-rank exchange by recording it, then execute the plans
    /// on the thread runtime with real payloads.
    #[test]
    fn recorded_exchange_executes_with_real_bytes() {
        let topo = Topology::new(1, 2);
        let compile = |rank: usize| {
            let passes = (0..EXEC_PASSES as u32)
                .map(|pass| {
                    let comm = PlanComm::new(rank, topo, pass, crate::plan::ir::Fidelity::Exec);
                    let mut sendbuf = vec![0u8; 4];
                    comm.fill_sendbuf(&mut sendbuf);
                    let peer = 1 - rank;
                    comm.send(peer, 0, &sendbuf);
                    let got = comm.recv(peer, 0, 4);
                    comm.finish(Some(got))
                })
                .collect();
            assemble(
                rank,
                topo,
                crate::plan::ir::Fidelity::Exec,
                IoShape {
                    sendbuf: Some(4),
                    recvbuf: Some(4),
                    ..IoShape::default()
                },
                passes,
            )
        };
        let plans = [compile(0), compile(1)];
        let plans_ref = &plans;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = vec![10 + comm.rank() as u8; 4];
            let mut recvbuf = vec![0u8; 4];
            execute_rank_plan(
                &plans_ref[comm.rank()],
                &comm,
                PlanIo {
                    sendbuf: Some(&sendbuf),
                    recvbuf: Some(&mut recvbuf),
                },
                None,
                7 << 16,
            );
            recvbuf
        })
        .unwrap();
        assert_eq!(results[0], vec![11; 4]);
        assert_eq!(results[1], vec![10; 4]);
    }

    /// A reduce plan recorded through the opaque interception executes with
    /// a typed [`crate::datatype::ReduceKernel`] supplied at run time — the
    /// plan itself is operator-agnostic, so one recording serves every
    /// invocation with the same `(datatype, op)` key.
    #[test]
    fn recorded_reduce_plan_executes_with_a_typed_kernel() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(1, 2);
        let compile = |rank: usize| {
            let passes = (0..EXEC_PASSES as u32)
                .map(|pass| {
                    let comm = PlanComm::new(rank, topo, pass, crate::plan::ir::Fidelity::Exec);
                    let mut buf = vec![0u8; 8];
                    comm.fill_sendbuf(&mut buf);
                    let peer = 1 - rank;
                    comm.send(peer, 0, &buf);
                    let incoming = comm.recv(peer, 0, 8);
                    let op = comm.reducer();
                    op(&mut buf, &incoming);
                    drop(op);
                    comm.charge_reduce(8);
                    comm.finish(Some(buf))
                })
                .collect();
            assemble(
                rank,
                topo,
                crate::plan::ir::Fidelity::Exec,
                IoShape {
                    sendbuf: None,
                    recvbuf: Some(8),
                    inout: true,
                    needs_reduce_op: true,
                    ..IoShape::default()
                },
                passes,
            )
        };
        let plans = [compile(0), compile(1)];
        let plans_ref = &plans;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let input: [i32; 2] = [comm.rank() as i32 + 1, -(comm.rank() as i32) - 10];
            let mut buf = to_bytes(&input);
            let kernel = ReduceKernel::of::<i32>(ReduceOp::Sum);
            execute_rank_plan(
                &plans_ref[comm.rank()],
                &comm,
                PlanIo {
                    sendbuf: None,
                    recvbuf: Some(&mut buf),
                },
                Some(kernel.as_fn()),
                9 << 16,
            );
            from_bytes::<i32>(&buf)
        })
        .unwrap();
        for (rank, out) in results.iter().enumerate() {
            assert_eq!(out, &vec![3, -21], "typed planned reduce at rank {rank}");
        }
    }

    /// The same cached plan executes twice on one communicator without the
    /// shared-region namespaces or tags colliding.
    #[test]
    fn repeated_execution_of_one_plan_does_not_collide() {
        let topo = Topology::new(1, 2);
        let compile = |rank: usize| {
            let passes = (0..EXEC_PASSES as u32)
                .map(|pass| {
                    let comm = PlanComm::new(rank, topo, pass, crate::plan::ir::Fidelity::Exec);
                    let mut sendbuf = vec![0u8; 2];
                    comm.fill_sendbuf(&mut sendbuf);
                    if rank == 0 {
                        comm.shared_alloc("stage_0", 4);
                    }
                    comm.node_barrier();
                    comm.shared_write(0, "stage_0", rank * 2, &sendbuf);
                    comm.node_barrier();
                    let all = comm.shared_read(0, "stage_0", 0, 4);
                    comm.finish(Some(all))
                })
                .collect();
            assemble(
                rank,
                topo,
                crate::plan::ir::Fidelity::Exec,
                IoShape {
                    sendbuf: Some(2),
                    recvbuf: Some(4),
                    ..IoShape::default()
                },
                passes,
            )
        };
        let plans = [compile(0), compile(1)];
        let plans_ref = &plans;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut outputs = Vec::new();
            for call in 0..2u8 {
                let sendbuf = vec![(1 + call) * (10 + comm.rank() as u8); 2];
                let mut recvbuf = vec![0u8; 4];
                execute_rank_plan(
                    &plans_ref[comm.rank()],
                    &comm,
                    PlanIo {
                        sendbuf: Some(&sendbuf),
                        recvbuf: Some(&mut recvbuf),
                    },
                    None,
                    (call as u64 + 1) << 16,
                );
                outputs.push(recvbuf);
            }
            outputs
        })
        .unwrap();
        assert_eq!(results[0][0], vec![10, 10, 11, 11]);
        assert_eq!(results[0][1], vec![20, 20, 22, 22]);
    }

    /// Repeat executions of one plan with a long-lived arena stop touching
    /// the allocator: every buffer the second run needs was released by the
    /// first (value slots and output writes locally, sent payloads by the
    /// peer's symmetric receive).
    #[test]
    fn reused_arena_makes_repeat_executions_allocation_free() {
        let topo = Topology::new(1, 2);
        let compile = |rank: usize| {
            let passes = (0..EXEC_PASSES as u32)
                .map(|pass| {
                    let comm = PlanComm::new(rank, topo, pass, crate::plan::ir::Fidelity::Exec);
                    let mut sendbuf = vec![0u8; 8];
                    comm.fill_sendbuf(&mut sendbuf);
                    let peer = 1 - rank;
                    comm.send(peer, 0, &sendbuf);
                    let got = comm.recv(peer, 0, 8);
                    comm.finish(Some(got))
                })
                .collect();
            assemble(
                rank,
                topo,
                crate::plan::ir::Fidelity::Exec,
                IoShape {
                    sendbuf: Some(8),
                    recvbuf: Some(8),
                    ..IoShape::default()
                },
                passes,
            )
        };
        let plans = [compile(0), compile(1)];
        let plans_ref = &plans;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut arena = BufferArena::new();
            let mut misses_after = Vec::new();
            for call in 0..4u64 {
                let sendbuf = vec![call as u8 + 1; 8];
                let mut recvbuf = vec![0u8; 8];
                execute_rank_plan_reusing(
                    &plans_ref[comm.rank()],
                    &comm,
                    PlanIo {
                        sendbuf: Some(&sendbuf),
                        recvbuf: Some(&mut recvbuf),
                    },
                    None,
                    (call + 1) << 16,
                    &mut arena,
                );
                assert_eq!(recvbuf, vec![call as u8 + 1; 8]);
                misses_after.push(arena.stats().misses);
            }
            misses_after
        })
        .unwrap();
        for misses_after in &results {
            assert!(misses_after[0] > 0, "the first run must fill the pool");
            assert_eq!(
                misses_after[1..],
                [misses_after[0]; 3],
                "repeat runs must be served entirely from the arena"
            );
        }
    }

    #[test]
    #[should_panic(expected = "schedule-fidelity")]
    fn schedule_plans_refuse_execution() {
        let topo = Topology::new(1, 1);
        let comm = PlanComm::new(0, topo, 0, crate::plan::ir::Fidelity::Schedule);
        comm.node_barrier();
        let plan = assemble(
            0,
            topo,
            crate::plan::ir::Fidelity::Schedule,
            IoShape::default(),
            vec![comm.finish(None)],
        );
        let _ = ValId::default();
        // Any Comm works for the fidelity check; recording is the cheapest.
        let recorder = crate::comm::TraceComm::new(0, topo);
        execute_rank_plan(&plan, &recorder, PlanIo::default(), None, 1 << 16);
    }
}
