//! The plan/execute split: compile a collective once, run it many times.
//!
//! A collective schedule is a pure function of `(collective, topology,
//! message size, library)` — nothing in it depends on payload contents.
//! This module exploits that invariance the way persistent/partitioned MPI
//! collectives do, by separating the two phases that today's `execute()`
//! path fuses:
//!
//! * **Compile** ([`record`]): run the unmodified algorithm once against the
//!   recording [`record::PlanComm`] (the third [`crate::comm::Comm`]
//!   implementation, next to `ThreadComm` and `TraceComm`) and assemble a
//!   validated [`ir::RankPlan`] — a symbolic per-rank program.
//! * **Execute** ([`exec`]): replay the compiled program on a live
//!   communicator with fresh caller buffers, or lower it straight to a
//!   `pip-netsim` trace ([`ir::Plan::to_trace`]) without touching the
//!   algorithm again.
//!
//! Caching compiled plans per communicator (see `pip-mpi-model`'s
//! `PlanCache`) turns the dispatch hot path into *lookup-or-compile, then
//! run*.

pub mod arena;
pub mod cursor;
pub mod exec;
pub mod ir;
pub mod record;
pub mod rewrite;
pub mod symmetry;

pub use arena::{shared_arena, ArenaStats, BufferArena, SharedArena};
pub use cursor::{CursorOutput, PlanCursor, StepOutcome};
pub use exec::{execute_rank_plan, execute_rank_plan_reusing, PlanIo};
pub use ir::{Fidelity, IoShape, Plan, PlanError, PlanOp, RankPlan, Src, SrcSeg, ValId};
pub use record::{assemble, PlanComm, EXEC_PASSES};
pub use rewrite::compress_rank_transfers;
pub use symmetry::{folded_trace, ranks_equal_under, schedules_equal_under, PlanSymmetry};
