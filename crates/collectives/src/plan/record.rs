//! Compiling a collective algorithm to a [`RankPlan`] by *recording* it.
//!
//! [`PlanComm`] is the third [`Comm`] implementation: like
//! [`crate::comm::TraceComm`] it runs the unmodified algorithm once per rank
//! without moving real data, but instead of only noting costs it captures a
//! full symbolic program.  The hard part is *data provenance*: algorithms
//! privately copy, slice and concatenate the byte buffers the `Comm` surface
//! hands them, so the recorder cannot see where an outgoing payload came
//! from.  The compiler recovers provenance with **fingerprint taint**:
//!
//! * every byte the recorder hands to the algorithm (receives, shared reads,
//!   the caller's buffers) is a pseudo-random *fingerprint* of its symbolic
//!   location `(value, offset)`;
//! * reductions are intercepted by a compiler-provided operator
//!   ([`PlanComm::reducer`]) that records a [`PlanOp::Reduce`] and rewrites
//!   the accumulator with the fingerprints of a fresh value, so reduced data
//!   stays trackable;
//! * every byte the algorithm passes back (sends, shared writes, the final
//!   output buffer) is resolved to its source by inverting the fingerprint
//!   function.
//!
//! One 8-bit fingerprint per byte would collide constantly, so an
//! exec-fidelity compile runs the algorithm **eight times** with eight
//! independent fingerprint seeds (sound because algorithms never branch on
//! payload contents — the op skeleton is asserted identical across passes).
//! A byte position is then identified by the 64-bit tuple of its observed
//! bytes, making a mis-resolution as unlikely as a 64-bit hash collision;
//! bytes that are identical across all eight passes are constants the
//! algorithm wrote itself and become [`SrcSeg::Lit`].
//!
//! Schedule-fidelity compiles skip all of this: one pass, zero-filled
//! buffers, [`SrcSeg::Opaque`] payloads — exactly the cost of the legacy
//! `record_trace` replay, but producing a cacheable [`RankPlan`].

use std::collections::HashMap;
use std::sync::Mutex;

use pip_runtime::Topology;

use crate::comm::Comm;
use crate::plan::ir::{Fidelity, IoShape, NameId, PlanOp, RankPlan, Src, SrcSeg, ValId};

/// Number of recording passes for an exec-fidelity compile (64 effective
/// fingerprint bits per byte position).
pub const EXEC_PASSES: usize = 8;

/// Pseudo-value standing for the caller's send buffer in the internal value
/// numbering (mapped to [`SrcSeg::SendBuf`] on emission).
const VAL_SENDBUF: ValId = 0;
/// Pseudo-value standing for the receive buffer's initial contents.
const VAL_RECVINIT: ValId = 1;
/// First id for values that materialize during execution.
const FIRST_RUNTIME_VAL: ValId = 2;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 64-bit seed unique to `(pass, val)`.
///
/// Hashing the pair *before* mixing in the offset is load-bearing: a packed
/// key like `(pass << 56) ^ (val << 24) ^ offset` would let large offsets
/// (≥ 2²⁴, i.e. buffers over 16 MiB) spill into the value bits and collide
/// *identically in every pass*, silently defeating the multi-pass scheme.
/// With a hashed seed, a cross-location collision needs
/// `seed_a ^ off_a == seed_b ^ off_b` — a structureless 2⁻⁶⁴ event.
#[inline]
fn pass_val_seed(pass: u32, val: ValId) -> u64 {
    splitmix64(((pass as u64) << 32) | val as u64)
}

/// The fingerprint byte of `(pass, val, offset)`.
#[inline]
fn fingerprint(pass: u32, val: ValId, offset: usize) -> u8 {
    (splitmix64(pass_val_seed(pass, val) ^ offset as u64) >> 17) as u8
}

/// Fill `buf` with the fingerprints of value `val` for `pass`.
pub(crate) fn fill_fingerprints(pass: u32, val: ValId, buf: &mut [u8]) {
    let seed = pass_val_seed(pass, val);
    for (off, byte) in buf.iter_mut().enumerate() {
        *byte = (splitmix64(seed ^ off as u64) >> 17) as u8;
    }
}

/// Index of a captured payload within a pass recording.
type SiteId = u32;

/// The op skeleton recorded during one pass: identical to [`PlanOp`] except
/// that payloads are capture-site indices and names are still strings.
#[derive(Debug, Clone, PartialEq)]
enum RecOp {
    SharedAlloc {
        name: String,
        len: usize,
    },
    SharedPublish {
        name: String,
        site: SiteId,
    },
    SharedCollect {
        name: String,
        len: usize,
        dst: ValId,
    },
    SharedWrite {
        owner_local: usize,
        name: String,
        offset: usize,
        site: SiteId,
    },
    SharedRead {
        owner_local: usize,
        name: String,
        offset: usize,
        len: usize,
        dst: ValId,
    },
    Send {
        dest: usize,
        tag: u64,
        site: SiteId,
    },
    Recv {
        source: usize,
        tag: u64,
        len: usize,
        dst: ValId,
    },
    SendFromShared {
        owner_local: usize,
        name: String,
        offset: usize,
        len: usize,
        dest: usize,
        tag: u64,
    },
    RecvIntoShared {
        owner_local: usize,
        name: String,
        offset: usize,
        source: usize,
        tag: u64,
        len: usize,
    },
    NodeBarrier,
    Reduce {
        dst: ValId,
        acc: SiteId,
        other: SiteId,
    },
    ChargeCopy {
        bytes: usize,
    },
    ChargeReduce {
        bytes: usize,
    },
    Delay {
        nanos: f64,
    },
}

#[derive(Debug, Default)]
struct RecState {
    ops: Vec<RecOp>,
    /// Length of each runtime value (ids offset by [`FIRST_RUNTIME_VAL`]).
    val_lens: Vec<usize>,
    /// Captured payload bytes, one entry per resolution site (empty vectors
    /// under schedule fidelity, where only the length matters).
    sites: Vec<Vec<u8>>,
    /// Length of each resolution site.
    site_lens: Vec<usize>,
}

/// The recording [`Comm`] implementation.  One instance records one pass for
/// one rank; [`assemble`] fuses the passes into a [`RankPlan`].
pub struct PlanComm {
    rank: usize,
    topology: Topology,
    pass: u32,
    fidelity: Fidelity,
    state: Mutex<RecState>,
}

/// Everything one pass recorded, extracted with [`PlanComm::finish`].
pub struct PassRecording {
    ops: Vec<RecOp>,
    val_lens: Vec<usize>,
    sites: Vec<Vec<u8>>,
    site_lens: Vec<usize>,
    /// Final contents of the caller-visible output buffer, if any.
    out: Option<Vec<u8>>,
}

impl PlanComm {
    /// Create a recorder for `rank` in `topology`, for recording pass
    /// `pass` (always 0 for schedule fidelity).
    pub fn new(rank: usize, topology: Topology, pass: u32, fidelity: Fidelity) -> Self {
        assert!(
            fidelity == Fidelity::Exec || pass == 0,
            "schedule fidelity records a single pass"
        );
        Self {
            rank,
            topology,
            pass,
            fidelity,
            state: Mutex::new(RecState::default()),
        }
    }

    /// The pass this recorder fills.
    pub fn pass(&self) -> u32 {
        self.pass
    }

    /// Fill `buf` with the fingerprints of the caller's send buffer for this
    /// pass (zeroes under schedule fidelity).  The compile driver uses this
    /// to prepare the synthetic input buffers before running the algorithm.
    pub fn fill_sendbuf(&self, buf: &mut [u8]) {
        match self.fidelity {
            Fidelity::Exec => fill_fingerprints(self.pass, VAL_SENDBUF, buf),
            Fidelity::Schedule => buf.fill(0),
        }
    }

    /// As [`PlanComm::fill_sendbuf`] for the receive buffer's initial
    /// contents.
    pub fn fill_recvbuf(&self, buf: &mut [u8]) {
        match self.fidelity {
            Fidelity::Exec => fill_fingerprints(self.pass, VAL_RECVINIT, buf),
            Fidelity::Schedule => buf.fill(0),
        }
    }

    /// A reduction operator that records [`PlanOp::Reduce`] and re-taints
    /// the accumulator.  The compile driver passes this to allreduce-style
    /// requests instead of the caller's real operator — typed or opaque —
    /// which is supplied again at execution time (e.g. as a
    /// [`crate::datatype::ReduceKernel`]).  The recorded plan is therefore
    /// operator-agnostic; the plan cache keys it by the reduction's
    /// `(datatype, op)` identity because the *schedule* (element-aligned
    /// chunk boundaries) depends on the element size.
    pub fn reducer(&self) -> impl Fn(&mut [u8], &[u8]) + Sync + '_ {
        move |acc: &mut [u8], other: &[u8]| {
            let mut state = self.state.lock().unwrap();
            let acc_site = Self::capture(&mut state, acc, self.fidelity);
            let other_site = Self::capture(&mut state, other, self.fidelity);
            let dst = Self::new_val(&mut state, acc.len());
            state.ops.push(RecOp::Reduce {
                dst,
                acc: acc_site,
                other: other_site,
            });
            drop(state);
            if self.fidelity == Fidelity::Exec {
                fill_fingerprints(self.pass, dst, acc);
            }
        }
    }

    /// Extract the pass recording.  `out` is the final contents of the
    /// caller-visible output buffer (`None` when the rank has none, e.g. a
    /// non-root gather rank or a barrier).
    pub fn finish(self, out: Option<Vec<u8>>) -> PassRecording {
        let state = self.state.into_inner().unwrap();
        PassRecording {
            ops: state.ops,
            val_lens: state.val_lens,
            sites: state.sites,
            site_lens: state.site_lens,
            out,
        }
    }

    fn capture(state: &mut RecState, data: &[u8], fidelity: Fidelity) -> SiteId {
        let id = state.sites.len() as SiteId;
        // Under schedule fidelity only the length matters; never copy (or
        // even allocate for) the payload bytes.
        state.site_lens.push(data.len());
        match fidelity {
            Fidelity::Exec => state.sites.push(data.to_vec()),
            Fidelity::Schedule => state.sites.push(Vec::new()),
        }
        id
    }

    fn new_val(state: &mut RecState, len: usize) -> ValId {
        let id = FIRST_RUNTIME_VAL + state.val_lens.len() as ValId;
        state.val_lens.push(len);
        id
    }

    /// Record `op` and hand the new value's fingerprint bytes back to the
    /// algorithm.
    fn define_val(&self, len: usize, make_op: impl FnOnce(ValId) -> RecOp) -> Vec<u8> {
        let mut state = self.state.lock().unwrap();
        let dst = Self::new_val(&mut state, len);
        let op = make_op(dst);
        state.ops.push(op);
        drop(state);
        let mut buf = vec![0u8; len];
        if self.fidelity == Fidelity::Exec {
            fill_fingerprints(self.pass, dst, &mut buf);
        }
        buf
    }

    fn push(&self, op: RecOp) {
        self.state.lock().unwrap().ops.push(op);
    }

    fn push_with_site(&self, data: &[u8], make_op: impl FnOnce(SiteId) -> RecOp) {
        let mut state = self.state.lock().unwrap();
        let site = Self::capture(&mut state, data, self.fidelity);
        let op = make_op(site);
        state.ops.push(op);
    }
}

impl Comm for PlanComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        self.push_with_site(data, |site| RecOp::Send { dest, tag, site });
    }

    fn recv(&self, source: usize, tag: u64, len: usize) -> Vec<u8> {
        self.define_val(len, |dst| RecOp::Recv {
            source,
            tag,
            len,
            dst,
        })
    }

    fn shared_alloc(&self, name: &str, len: usize) {
        self.push(RecOp::SharedAlloc {
            name: name.to_string(),
            len,
        });
    }

    fn shared_publish(&self, name: &str, data: &[u8]) {
        self.push_with_site(data, |site| RecOp::SharedPublish {
            name: name.to_string(),
            site,
        });
    }

    fn shared_collect(&self, name: &str, len: usize) -> Vec<u8> {
        self.define_val(len, |dst| RecOp::SharedCollect {
            name: name.to_string(),
            len,
            dst,
        })
    }

    fn shared_write(&self, owner_local: usize, name: &str, offset: usize, data: &[u8]) {
        self.push_with_site(data, |site| RecOp::SharedWrite {
            owner_local,
            name: name.to_string(),
            offset,
            site,
        });
    }

    fn shared_read(&self, owner_local: usize, name: &str, offset: usize, len: usize) -> Vec<u8> {
        self.define_val(len, |dst| RecOp::SharedRead {
            owner_local,
            name: name.to_string(),
            offset,
            len,
            dst,
        })
    }

    fn send_from_shared(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        len: usize,
        dest: usize,
        tag: u64,
    ) {
        self.push(RecOp::SendFromShared {
            owner_local,
            name: name.to_string(),
            offset,
            len,
            dest,
            tag,
        });
    }

    fn recv_into_shared(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        source: usize,
        tag: u64,
        len: usize,
    ) {
        self.push(RecOp::RecvIntoShared {
            owner_local,
            name: name.to_string(),
            offset,
            source,
            tag,
            len,
        });
    }

    fn node_barrier(&self) {
        self.push(RecOp::NodeBarrier);
    }

    fn charge_copy(&self, bytes: usize) {
        self.push(RecOp::ChargeCopy { bytes });
    }

    fn charge_reduce(&self, bytes: usize) {
        self.push(RecOp::ChargeReduce { bytes });
    }

    fn delay(&self, nanos: f64) {
        self.push(RecOp::Delay { nanos });
    }
}

// ---------------------------------------------------------------------------
// Multi-pass assembly: fingerprint inversion.
// ---------------------------------------------------------------------------

/// Inverts fingerprints: maps the 64-bit tuple of a byte position's
/// fingerprints across all passes back to `(value, offset)`.
struct Resolver {
    map: HashMap<u64, (ValId, u32)>,
    /// Rare genuine 64-bit collisions spill here.
    overflow: HashMap<u64, Vec<(ValId, u32)>>,
}

impl Resolver {
    fn build(val_lens: &[(ValId, usize)]) -> Self {
        let total: usize = val_lens.iter().map(|(_, len)| len).sum();
        let mut resolver = Resolver {
            map: HashMap::with_capacity(total),
            overflow: HashMap::new(),
        };
        for &(val, len) in val_lens {
            for off in 0..len {
                let key = Self::key_for(val, off);
                if let Some(prev) = resolver.map.insert(key, (val, off as u32)) {
                    resolver.overflow.entry(key).or_default().push(prev);
                }
            }
        }
        resolver
    }

    fn key_for(val: ValId, off: usize) -> u64 {
        let mut key = 0u64;
        for pass in 0..EXEC_PASSES as u32 {
            key = (key << 8) | fingerprint(pass, val, off) as u64;
        }
        key
    }

    /// Resolve one byte position observed as `key` across the passes.
    /// `hint` is the source the previous byte resolved to, used to keep runs
    /// contiguous when a genuine collision offers multiple candidates.
    fn lookup(&self, key: u64, hint: Option<(ValId, u32)>) -> Option<(ValId, u32)> {
        let primary = self.map.get(&key).copied();
        if let Some(hint) = hint {
            let continues = |c: &(ValId, u32)| c.0 == hint.0 && c.1 == hint.1 + 1;
            if let Some(c) = primary.filter(continues) {
                return Some(c);
            }
            if let Some(spill) = self.overflow.get(&key) {
                if let Some(c) = spill.iter().copied().find(|c| continues(c)) {
                    return Some(c);
                }
            }
        }
        primary
    }
}

/// Resolve a site (its bytes observed across all passes) into a [`Src`].
fn resolve_site(passes: &[&[u8]], resolver: &Resolver) -> Result<Src, usize> {
    let len = passes[0].len();
    debug_assert!(passes.iter().all(|p| p.len() == len));
    let mut segs: Vec<SrcSeg> = Vec::new();
    let mut prev: Option<(ValId, u32)> = None;
    for i in 0..len {
        let first = passes[0][i];
        if passes.iter().all(|p| p[i] == first) {
            // Identical across all independent passes: a constant the
            // algorithm wrote itself.
            prev = None;
            match segs.last_mut() {
                Some(SrcSeg::Lit(bytes)) => bytes.push(first),
                _ => segs.push(SrcSeg::Lit(vec![first])),
            }
            continue;
        }
        let mut key = 0u64;
        for p in passes {
            key = (key << 8) | p[i] as u64;
        }
        let (val, off) = resolver.lookup(key, prev).ok_or(i)?;
        prev = Some((val, off));
        let extended = match segs.last_mut() {
            Some(SrcSeg::Val { id, offset, len })
                if *id == val && *offset + *len == off as usize =>
            {
                *len += 1;
                true
            }
            _ => false,
        };
        if !extended {
            segs.push(SrcSeg::Val {
                id: val,
                offset: off as usize,
                len: 1,
            });
        }
    }
    // Map the pseudo-values to their caller-buffer segments and shift
    // runtime ids down to a dense 0-based numbering.
    for seg in &mut segs {
        if let SrcSeg::Val { id, offset, len } = *seg {
            *seg = match id {
                VAL_SENDBUF => SrcSeg::SendBuf { offset, len },
                VAL_RECVINIT => SrcSeg::RecvInit { offset, len },
                _ => SrcSeg::Val {
                    id: id - FIRST_RUNTIME_VAL,
                    offset,
                    len,
                },
            };
        }
    }
    Ok(Src { segs })
}

/// Fuse the recordings of all passes into a [`RankPlan`].
///
/// Panics if the passes recorded different op skeletons (which would mean an
/// algorithm branched on payload contents, violating the `Comm` contract) or
/// if a payload byte cannot be attributed to any source.
pub fn assemble(
    rank: usize,
    topology: Topology,
    fidelity: Fidelity,
    io: IoShape,
    passes: Vec<PassRecording>,
) -> RankPlan {
    let expected = match fidelity {
        Fidelity::Exec => EXEC_PASSES,
        Fidelity::Schedule => 1,
    };
    assert_eq!(passes.len(), expected, "wrong number of recording passes");
    let first = &passes[0];
    for pass in &passes[1..] {
        assert_eq!(
            pass.ops, first.ops,
            "rank {rank}: op skeleton diverged between recording passes — \
             an algorithm branched on payload contents"
        );
        assert_eq!(pass.val_lens, first.val_lens, "value table diverged");
    }

    let resolver = (fidelity == Fidelity::Exec).then(|| {
        let mut vals: Vec<(ValId, usize)> = Vec::with_capacity(first.val_lens.len() + 2);
        if let Some(len) = if io.inout { io.recvbuf } else { io.sendbuf } {
            vals.push((VAL_SENDBUF, len));
        }
        if let Some(len) = io.recvbuf {
            if !io.inout {
                vals.push((VAL_RECVINIT, len));
            }
        }
        for (i, &len) in first.val_lens.iter().enumerate() {
            vals.push((FIRST_RUNTIME_VAL + i as ValId, len));
        }
        Resolver::build(&vals)
    });

    let resolve = |site: SiteId| -> Src {
        let site = site as usize;
        match &resolver {
            Some(resolver) => {
                let views: Vec<&[u8]> = passes.iter().map(|p| p.sites[site].as_slice()).collect();
                resolve_site(&views, resolver).unwrap_or_else(|byte| {
                    panic!(
                        "rank {rank}: cannot attribute byte {byte} of payload site {site} \
                         to any symbolic source"
                    )
                })
            }
            None => Src::opaque(first.site_lens[site]),
        }
    };

    let mut names: Vec<String> = Vec::new();
    let intern = |name: &str, names: &mut Vec<String>| -> NameId {
        match names.iter().position(|n| n == name) {
            Some(i) => i as NameId,
            None => {
                names.push(name.to_string());
                (names.len() - 1) as NameId
            }
        }
    };

    let shift = |val: ValId| -> ValId { val - FIRST_RUNTIME_VAL };
    let mut ops: Vec<PlanOp> = Vec::with_capacity(first.ops.len() + 2);
    for op in &first.ops {
        ops.push(match op {
            RecOp::SharedAlloc { name, len } => PlanOp::SharedAlloc {
                name: intern(name, &mut names),
                len: *len,
            },
            RecOp::SharedPublish { name, site } => PlanOp::SharedPublish {
                name: intern(name, &mut names),
                src: resolve(*site),
            },
            RecOp::SharedCollect { name, len, dst } => PlanOp::SharedCollect {
                name: intern(name, &mut names),
                len: *len,
                dst: shift(*dst),
            },
            RecOp::SharedWrite {
                owner_local,
                name,
                offset,
                site,
            } => PlanOp::SharedWrite {
                owner_local: *owner_local,
                name: intern(name, &mut names),
                offset: *offset,
                src: resolve(*site),
            },
            RecOp::SharedRead {
                owner_local,
                name,
                offset,
                len,
                dst,
            } => PlanOp::SharedRead {
                owner_local: *owner_local,
                name: intern(name, &mut names),
                offset: *offset,
                len: *len,
                dst: shift(*dst),
            },
            RecOp::Send { dest, tag, site } => PlanOp::Send {
                dest: *dest,
                tag: *tag,
                src: resolve(*site),
            },
            RecOp::Recv {
                source,
                tag,
                len,
                dst,
            } => PlanOp::Recv {
                source: *source,
                tag: *tag,
                len: *len,
                dst: shift(*dst),
            },
            RecOp::SendFromShared {
                owner_local,
                name,
                offset,
                len,
                dest,
                tag,
            } => PlanOp::SendFromShared {
                owner_local: *owner_local,
                name: intern(name, &mut names),
                offset: *offset,
                len: *len,
                dest: *dest,
                tag: *tag,
            },
            RecOp::RecvIntoShared {
                owner_local,
                name,
                offset,
                source,
                tag,
                len,
            } => PlanOp::RecvIntoShared {
                owner_local: *owner_local,
                name: intern(name, &mut names),
                offset: *offset,
                source: *source,
                tag: *tag,
                len: *len,
            },
            RecOp::NodeBarrier => PlanOp::NodeBarrier,
            RecOp::Reduce { dst, acc, other } => PlanOp::Reduce {
                dst: shift(*dst),
                acc: resolve(*acc),
                other: resolve(*other),
            },
            RecOp::ChargeCopy { bytes } => PlanOp::ChargeCopy { bytes: *bytes },
            RecOp::ChargeReduce { bytes } => PlanOp::ChargeReduce { bytes: *bytes },
            RecOp::Delay { nanos } => PlanOp::Delay { nanos: *nanos },
        });
    }

    // Derive the trailing CopyOut ops from the final output buffer: resolve
    // its contents and drop the identity pieces (bytes the algorithm left
    // untouched, or — for in/out collectives — bytes that still hold the
    // caller's own input at the same position).
    if fidelity == Fidelity::Exec {
        if let Some(resolver) = &resolver {
            if first.out.is_some() {
                let views: Vec<&[u8]> = passes
                    .iter()
                    .map(|p| p.out.as_deref().expect("out present in every pass"))
                    .collect();
                let src = resolve_site(&views, resolver).unwrap_or_else(|byte| {
                    panic!("rank {rank}: cannot attribute output byte {byte} to any source")
                });
                let mut cursor = 0usize;
                for seg in src.segs {
                    let len = seg.len();
                    let identity = match seg {
                        SrcSeg::RecvInit { offset, .. } => offset == cursor,
                        SrcSeg::SendBuf { offset, .. } => io.inout && offset == cursor,
                        _ => false,
                    };
                    if !identity && len > 0 {
                        ops.push(PlanOp::CopyOut {
                            offset: cursor,
                            src: Src { segs: vec![seg] },
                        });
                    }
                    cursor += len;
                }
            }
        }
    }

    let needs_reduce_op = first
        .ops
        .iter()
        .any(|op| matches!(op, RecOp::Reduce { .. }));
    let plan = RankPlan {
        rank,
        topology,
        fidelity,
        io: IoShape {
            needs_reduce_op,
            ..io
        },
        names,
        val_lens: first.val_lens.clone(),
        ops,
    };
    plan.validate().unwrap_or_else(|e| {
        panic!("rank {rank}: compiled plan failed validation: {e}");
    });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic_and_pass_dependent() {
        assert_eq!(fingerprint(0, 7, 13), fingerprint(0, 7, 13));
        let mut distinct = std::collections::HashSet::new();
        for pass in 0..8 {
            distinct.insert(fingerprint(pass, 3, 5));
        }
        // Eight independent draws from 256 values are essentially never all
        // identical; equality here would break literal detection.
        assert!(distinct.len() > 1);
    }

    #[test]
    fn fingerprint_keys_do_not_alias_across_values_at_large_offsets() {
        // Regression: a bit-packed (pass, val, offset) key let offsets
        // >= 2^24 spill into the value bits, so RecvInit byte 2^24+k
        // collided with SendBuf byte k in *every* pass — invisible to the
        // multi-pass resolver.  The hashed per-(pass, val) seed makes those
        // resolver keys distinct.
        for k in [0usize, 1, 77, 4096] {
            let a = Resolver::key_for(VAL_SENDBUF, k);
            let b = Resolver::key_for(VAL_RECVINIT, (1 << 24) + k);
            assert_ne!(a, b, "aliased resolver keys at offset {k}");
        }
    }

    #[test]
    fn resolver_round_trips_value_bytes() {
        let resolver = Resolver::build(&[(VAL_SENDBUF, 32), (FIRST_RUNTIME_VAL, 16)]);
        // Simulate observing bytes of runtime value 0 at offsets 4..12.
        let passes: Vec<Vec<u8>> = (0..EXEC_PASSES as u32)
            .map(|pass| {
                (4..12)
                    .map(|off| fingerprint(pass, FIRST_RUNTIME_VAL, off))
                    .collect()
            })
            .collect();
        let views: Vec<&[u8]> = passes.iter().map(Vec::as_slice).collect();
        let src = resolve_site(&views, &resolver).unwrap();
        assert_eq!(
            src.segs,
            vec![SrcSeg::Val {
                id: 0,
                offset: 4,
                len: 8
            }]
        );
    }

    #[test]
    fn resolver_detects_literals_and_concatenations() {
        let resolver = Resolver::build(&[(VAL_SENDBUF, 8)]);
        let passes: Vec<Vec<u8>> = (0..EXEC_PASSES as u32)
            .map(|pass| {
                let mut bytes: Vec<u8> = (0..8)
                    .map(|off| fingerprint(pass, VAL_SENDBUF, off))
                    .collect();
                bytes.extend_from_slice(&[0xAB, 0xCD]); // constants
                bytes
            })
            .collect();
        let views: Vec<&[u8]> = passes.iter().map(Vec::as_slice).collect();
        let src = resolve_site(&views, &resolver).unwrap();
        assert_eq!(
            src.segs,
            vec![
                SrcSeg::SendBuf { offset: 0, len: 8 },
                SrcSeg::Lit(vec![0xAB, 0xCD]),
            ]
        );
    }

    #[test]
    fn plan_comm_records_a_simple_exchange() {
        let topo = Topology::new(1, 2);
        let passes: Vec<PassRecording> = (0..EXEC_PASSES as u32)
            .map(|pass| {
                let comm = PlanComm::new(0, topo, pass, Fidelity::Exec);
                let mut sendbuf = vec![0u8; 4];
                comm.fill_sendbuf(&mut sendbuf);
                comm.send(1, 0, &sendbuf);
                let data = comm.recv(1, 1, 4);
                comm.node_barrier();
                comm.finish(Some(data))
            })
            .collect();
        let io = IoShape {
            sendbuf: Some(4),
            recvbuf: Some(4),
            ..IoShape::default()
        };
        let plan = assemble(0, topo, Fidelity::Exec, io, passes);
        assert_eq!(plan.ops.len(), 4);
        assert!(matches!(
            &plan.ops[0],
            PlanOp::Send { dest: 1, tag: 0, src }
                if src.segs == vec![SrcSeg::SendBuf { offset: 0, len: 4 }]
        ));
        assert!(matches!(
            plan.ops[1],
            PlanOp::Recv {
                source: 1,
                tag: 1,
                len: 4,
                dst: 0
            }
        ));
        assert!(matches!(plan.ops[2], PlanOp::NodeBarrier));
        assert!(matches!(
            &plan.ops[3],
            PlanOp::CopyOut { offset: 0, src }
                if src.segs == vec![SrcSeg::Val { id: 0, offset: 0, len: 4 }]
        ));
    }

    #[test]
    fn schedule_fidelity_produces_opaque_payloads_in_one_pass() {
        let topo = Topology::new(1, 2);
        let comm = PlanComm::new(0, topo, 0, Fidelity::Schedule);
        comm.send(1, 0, &[0u8; 16]);
        let _ = comm.recv(1, 0, 16);
        let passes = vec![comm.finish(None)];
        let io = IoShape::default();
        let plan = assemble(0, topo, Fidelity::Schedule, io, passes);
        assert!(matches!(
            &plan.ops[0],
            PlanOp::Send { src, .. } if src.is_opaque() && src.len() == 16
        ));
    }

    #[test]
    fn reducer_interception_tracks_reduced_data() {
        let topo = Topology::new(1, 1);
        let passes: Vec<PassRecording> = (0..EXEC_PASSES as u32)
            .map(|pass| {
                let comm = PlanComm::new(0, topo, pass, Fidelity::Exec);
                let mut buf = vec![0u8; 8];
                comm.fill_sendbuf(&mut buf);
                let other = comm.recv(0, 0, 8);
                let op = comm.reducer();
                op(&mut buf, &other);
                comm.charge_reduce(8);
                drop(op);
                comm.send(0, 1, &buf);
                comm.finish(Some(buf))
            })
            .collect();
        let io = IoShape {
            sendbuf: None,
            recvbuf: Some(8),
            inout: true,
            needs_reduce_op: true,
            ..IoShape::default()
        };
        let plan = assemble(0, topo, Fidelity::Exec, io, passes);
        // Recv, Reduce, ChargeReduce, Send, CopyOut.
        assert!(matches!(plan.ops[1], PlanOp::Reduce { dst: 1, .. }));
        assert!(matches!(
            &plan.ops[3],
            PlanOp::Send { src, .. }
                if src.segs == vec![SrcSeg::Val { id: 1, offset: 0, len: 8 }]
        ));
        assert!(matches!(
            &plan.ops[4],
            PlanOp::CopyOut { offset: 0, src }
                if src.segs == vec![SrcSeg::Val { id: 1, offset: 0, len: 8 }]
        ));
        assert!(plan.io.needs_reduce_op);
    }
}
