//! The buffer arena behind the zero-allocation steady state of the execute
//! plane.
//!
//! Every run of a compiled plan materializes the same multiset of scratch
//! buffers: one per value slot it fills (received messages, shared reads,
//! reduction accumulators), one per payload it sends, one per deferred
//! output write.  Allocating those from the global allocator on every
//! invocation is exactly the per-call overhead persistent collectives
//! (`*_init` → repeated `start()`) exist to avoid, so the executor and the
//! [`crate::plan::cursor::PlanCursor`] draw them from a [`BufferArena`]
//! instead: a free-list pool keyed by the buffer length the plan's value
//! slots declare.
//!
//! The pool reaches a steady state because a plan's buffer traffic is
//! balanced across invocations: every buffer acquired for a value slot or
//! an output write is released back when the slot is overwritten or the run
//! finishes, and the buffers a rank's sends carry away (they move into the
//! fabric and on to the peer) are replaced by the received messages its
//! receives bring in — which are released into the pool when the run
//! finishes.  After the first invocation of a symmetric collective, repeat
//! invocations therefore hit the pool for every acquisition;
//! [`ArenaStats::misses`] stays flat, which
//! `tests/arena_steady_state.rs` pins for persistent allreduce and
//! reduce_scatter.
//!
//! One arena serves one rank (plans of all shapes share it, since pooling
//! is by buffer length); it is shared between the blocking executor, every
//! cursor, and every persistent handle of a communicator through the
//! [`SharedArena`] handle.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Pool accounting (see [`BufferArena::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Acquisitions served from the pool — no allocator involvement.
    pub hits: u64,
    /// Acquisitions that had to allocate (pool had no buffer of the
    /// requested length).  In the persistent-collective steady state this
    /// counter stops moving after the first `start()`.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub released: u64,
    /// Buffers dropped on release because their size class was already full
    /// (the pool's memory bound).
    pub dropped: u64,
}

/// Buffers of one exact capacity the pool will retain at most.  Collectives
/// acquire at most a few buffers per size class per invocation, so the cap
/// only matters for pathological callers; it bounds pool memory at
/// `cap × size` per class.
const MAX_POOLED_PER_CLASS: usize = 256;

/// A free-list buffer pool keyed by buffer capacity.
///
/// [`BufferArena::acquire`] hands out an *empty* `Vec<u8>` whose capacity is
/// at least the requested length (exactly, in practice: classes are keyed by
/// the capacities previously released).  [`BufferArena::release`] returns a
/// buffer to its class.  Zero-length requests are served without touching
/// the pool or the stats — an empty `Vec` never allocates.
#[derive(Debug, Default)]
pub struct BufferArena {
    classes: HashMap<usize, Vec<Vec<u8>>>,
    stats: ArenaStats,
}

impl BufferArena {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take an empty buffer with capacity for `len` bytes, reusing a pooled
    /// allocation when one of that class exists.
    pub fn acquire(&mut self, len: usize) -> Vec<u8> {
        if len == 0 {
            return Vec::new();
        }
        if let Some(class) = self.classes.get_mut(&len) {
            if let Some(mut buf) = class.pop() {
                buf.clear();
                self.stats.hits += 1;
                return buf;
            }
        }
        self.stats.misses += 1;
        Vec::with_capacity(len)
    }

    /// Return `buf` to the pool (keyed by its capacity).  Buffers with zero
    /// capacity, or whose class is already at the retention cap, are
    /// dropped.
    pub fn release(&mut self, buf: Vec<u8>) {
        let class = buf.capacity();
        if class == 0 {
            return;
        }
        let pooled = self.classes.entry(class).or_default();
        if pooled.len() >= MAX_POOLED_PER_CLASS {
            self.stats.dropped += 1;
            return;
        }
        self.stats.released += 1;
        pooled.push(buf);
    }

    /// Pool accounting since creation.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Number of buffers currently pooled (across all size classes).
    pub fn pooled(&self) -> usize {
        self.classes.values().map(Vec::len).sum()
    }
}

/// A [`BufferArena`] shareable between the blocking executor, plan cursors
/// and persistent handles of one rank.  Single-threaded by construction
/// (one communicator per rank thread), hence `Rc<RefCell>`.
pub type SharedArena = Rc<RefCell<BufferArena>>;

/// A fresh, empty [`SharedArena`].
pub fn shared_arena() -> SharedArena {
    Rc::new(RefCell::new(BufferArena::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_release_then_hit() {
        let mut arena = BufferArena::new();
        let mut buf = arena.acquire(16);
        assert_eq!(buf.capacity(), 16);
        assert!(buf.is_empty());
        buf.extend_from_slice(&[7u8; 16]);
        let ptr = buf.as_ptr();
        arena.release(buf);
        assert_eq!(arena.pooled(), 1);
        let again = arena.acquire(16);
        assert_eq!(again.as_ptr(), ptr, "the pooled allocation must be reused");
        assert!(again.is_empty(), "reused buffers come back cleared");
        let stats = arena.stats();
        assert_eq!((stats.hits, stats.misses, stats.released), (1, 1, 1));
    }

    #[test]
    fn distinct_lengths_use_distinct_classes() {
        let mut arena = BufferArena::new();
        arena.release({
            let mut b = Vec::with_capacity(8);
            b.push(1u8);
            b
        });
        let other = arena.acquire(16);
        assert_eq!(other.capacity(), 16);
        assert_eq!(arena.stats().misses, 1, "a different class must allocate");
        assert_eq!(arena.acquire(8).capacity(), 8);
        assert_eq!(arena.stats().hits, 1);
    }

    #[test]
    fn zero_length_requests_bypass_the_pool() {
        let mut arena = BufferArena::new();
        let buf = arena.acquire(0);
        assert_eq!(buf.capacity(), 0);
        arena.release(buf);
        assert_eq!(arena.stats(), ArenaStats::default());
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn release_respects_the_retention_cap() {
        let mut arena = BufferArena::new();
        for _ in 0..MAX_POOLED_PER_CLASS + 3 {
            arena.release(Vec::with_capacity(4));
        }
        assert_eq!(arena.pooled(), MAX_POOLED_PER_CLASS);
        assert_eq!(arena.stats().dropped, 3);
    }
}
