//! The resumable plan stepper behind non-blocking and persistent
//! collectives.
//!
//! [`execute_rank_plan`](crate::plan::exec::execute_rank_plan) walks a
//! compiled [`RankPlan`] in one blocking sweep.  A [`PlanCursor`] walks the
//! *same* program incrementally: every call to [`PlanCursor::step`] executes
//! ops until it reaches one whose completion is not yet available (a receive
//! whose message has not arrived, a node barrier a peer has not reached) and
//! then returns [`StepOutcome::Blocked`] instead of waiting.  A progress
//! engine (see [`crate::request`]) can therefore drive many outstanding
//! collectives on one communicator, advancing each as its messages land —
//! the MPI `MPI_I*` / persistent-collective execution model.
//!
//! Two things differ from the blocking executor, both forced by resumability:
//!
//! * **Buffers are owned.**  A blocked cursor outlives the call frame that
//!   created it, so it owns its send/receive buffers and hands them back
//!   through [`PlanCursor::into_output`] once finished.  Persistent handles
//!   reuse exactly this: the same buffers travel into a fresh cursor on
//!   every `start()`.
//! * **Node barriers go through the fabric.**  The runtime's node barrier
//!   blocks the calling thread and is shared by all collectives on a node,
//!   so out-of-order progress of interleaved collectives could pair
//!   arrivals from *different* collectives.  The cursor instead runs each
//!   [`PlanOp::NodeBarrier`] as a centralized message barrier in the
//!   invocation's own tag space (non-leaders send an arrival to the node
//!   leader, the leader answers with releases), which is pollable and
//!   isolated per invocation exactly like message tags and shared-region
//!   names.

use std::rc::Rc;

use crate::comm::{NonBlockingComm, ReduceFn};
use crate::compress::{compress, decompress};
use crate::plan::arena::{shared_arena, SharedArena};
use crate::plan::exec::{materialize_into, store_val};
use crate::plan::ir::{Fidelity, PlanOp, RankPlan, Src};

/// Tag offset (within one invocation's tag space) where the cursor's
/// node-barrier messages live: arrival at `BARRIER_TAG_OFFSET + 2 * episode`,
/// release one above it.  Collective algorithms encode rounds and phases as
/// small offsets, far below this; [`PlanCursor::new`] asserts the plan
/// respects the split.
pub const BARRIER_TAG_OFFSET: u64 = 1 << 14;

/// What one [`PlanCursor::step`] call achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// At least one operation (or barrier arrival) completed; more work may
    /// remain.
    Advanced,
    /// The cursor is waiting on a peer (unarrived message or barrier); no
    /// state changed.
    Blocked,
    /// The whole program has executed and the output buffer holds the
    /// collective's result.
    Done,
}

/// Sub-state of an in-progress [`PlanOp::NodeBarrier`].
#[derive(Debug)]
enum BarrierPhase {
    /// Not currently inside a barrier.
    Idle,
    /// Leader: collecting arrivals; `arrived[l]` records local rank `l`.
    Collecting { arrived: Vec<bool> },
    /// Non-leader: arrival sent, waiting for the leader's release.
    AwaitingRelease,
}

/// A resumable execution of one rank's compiled plan.
///
/// Created from a cached plan plus *owned* caller buffers and the invocation
/// tag; driven by [`PlanCursor::step`] until [`StepOutcome::Done`]; consumed
/// by [`PlanCursor::into_output`], which returns the buffers (the receive
/// buffer then holds the collective's result).
///
/// Like the blocking executor, output writes ([`PlanOp::CopyOut`]) are
/// deferred until the program finishes so `SendBuf`/`RecvInit` reads always
/// observe the caller's pre-execution bytes, even for in/out collectives
/// where input and output are the same buffer.
#[derive(Debug)]
pub struct PlanCursor {
    plan: Rc<RankPlan>,
    tag: u64,
    /// Shared-region names, pre-namespaced for this invocation.
    names: Vec<String>,
    pc: usize,
    vals: Vec<Option<Vec<u8>>>,
    pending_out: Vec<(usize, Vec<u8>)>,
    sendbuf: Option<Vec<u8>>,
    recvbuf: Option<Vec<u8>>,
    /// The caller's original strided send buffer while `sendbuf` holds its
    /// packed staging (`Some` only when the plan declares a send layout).
    caller_send: Option<Vec<u8>>,
    /// The caller's original strided receive buffer while `recvbuf` holds
    /// its packed staging; unpacked back (gaps preserved) when the program
    /// drains, so [`PlanCursor::into_output`] always returns the caller's
    /// extent-length buffers.
    caller_recv: Option<Vec<u8>>,
    /// Scratch-buffer pool; shared with the communicator (and hence every
    /// other cursor and the blocking executor of the same rank), so repeat
    /// invocations reuse each other's buffers — see
    /// [`crate::plan::arena::BufferArena`].
    arena: SharedArena,
    barrier: BarrierPhase,
    barriers_done: u64,
    checked_coords: bool,
    finished: bool,
}

/// The buffers a finished cursor hands back (see
/// [`PlanCursor::into_output`]).
#[derive(Debug)]
pub struct CursorOutput {
    /// The send buffer the cursor was created with, unchanged.
    pub sendbuf: Option<Vec<u8>>,
    /// The receive (or in/out) buffer, now holding the collective's result.
    pub recvbuf: Option<Vec<u8>>,
}

impl PlanCursor {
    /// Wrap `plan` with owned caller buffers for one invocation tagged
    /// `tag`.
    ///
    /// For in/out collectives (bcast, allreduce) pass the single caller
    /// buffer as `recvbuf` and `None` for `sendbuf`, as with
    /// [`crate::plan::exec::PlanIo`].
    ///
    /// # Panics
    ///
    /// Panics when the plan is schedule-fidelity, the buffer lengths
    /// disagree with the plan's [`crate::plan::ir::IoShape`], or the plan
    /// uses tag offsets that would collide with the cursor's barrier
    /// messages — all caller bugs, not data-dependent failures.
    pub fn new(
        plan: Rc<RankPlan>,
        sendbuf: Option<Vec<u8>>,
        recvbuf: Option<Vec<u8>>,
        tag: u64,
    ) -> Self {
        Self::with_arena(plan, sendbuf, recvbuf, tag, shared_arena())
    }

    /// As [`PlanCursor::new`] with a caller-provided scratch-buffer arena.
    ///
    /// Persistent collectives and per-communicator dispatch pass the
    /// communicator's shared arena here, so every `start()` after the first
    /// runs without allocating (`tests/arena_steady_state.rs` pins this).
    pub fn with_arena(
        plan: Rc<RankPlan>,
        sendbuf: Option<Vec<u8>>,
        recvbuf: Option<Vec<u8>>,
        tag: u64,
        arena: SharedArena,
    ) -> Self {
        assert_eq!(
            plan.fidelity,
            Fidelity::Exec,
            "schedule-fidelity plans cannot be executed"
        );
        // When a layout is present the caller's buffer spans the layout
        // extent; otherwise it is exactly the packed length the plan was
        // recorded with.
        let expect_send = if plan.io.inout { None } else { plan.io.sendbuf };
        assert_eq!(
            sendbuf.as_ref().map(Vec::len),
            expect_send.map(|len| plan.io.send_layout.map_or(len, |l| l.extent())),
            "send buffer does not match the plan's shape"
        );
        assert_eq!(
            recvbuf.as_ref().map(Vec::len),
            plan.io
                .recvbuf
                .map(|len| plan.io.recv_layout.map_or(len, |l| l.extent())),
            "receive buffer does not match the plan's shape"
        );
        // The tag-range split is a property of the *plan*, fixed when the
        // algorithm was compiled — not of this invocation — so the O(ops)
        // scan guards debug builds only and stays off the per-start hot
        // path persistent handles exist for.
        #[cfg(debug_assertions)]
        {
            let max_tag = plan
                .ops
                .iter()
                .filter_map(|op| match op {
                    PlanOp::Send { tag, .. }
                    | PlanOp::Recv { tag, .. }
                    | PlanOp::Compress { tag, .. }
                    | PlanOp::Decompress { tag, .. }
                    | PlanOp::SendFromShared { tag, .. }
                    | PlanOp::RecvIntoShared { tag, .. } => Some(*tag),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            assert!(
                max_tag < BARRIER_TAG_OFFSET,
                "plan tag offset {max_tag} collides with the barrier tag range"
            );
        }
        // Pack strided caller buffers into contiguous staging: the plan body
        // was recorded against packed bytes and never sees a gap byte. The
        // originals are stashed and restored (with staged output unpacked
        // into them) when the program drains.
        let mut sendbuf = sendbuf;
        let mut recvbuf = recvbuf;
        let mut caller_send = None;
        let mut caller_recv = None;
        {
            let mut pool = arena.borrow_mut();
            if let Some(layout) = plan.io.send_layout {
                if let Some(buf) = sendbuf.take() {
                    let mut stage = pool.acquire(layout.packed_len());
                    layout.pack_bytes(&buf, &mut stage);
                    caller_send = Some(buf);
                    sendbuf = Some(stage);
                }
            }
            if let Some(layout) = plan.io.recv_layout {
                if let Some(buf) = recvbuf.take() {
                    let mut stage = pool.acquire(layout.packed_len());
                    layout.pack_bytes(&buf, &mut stage);
                    caller_recv = Some(buf);
                    recvbuf = Some(stage);
                }
            }
        }
        let names = plan.names.iter().map(|n| format!("pl{tag}.{n}")).collect();
        let vals = vec![None; plan.val_lens.len()];
        Self {
            plan,
            tag,
            names,
            pc: 0,
            vals,
            pending_out: Vec::new(),
            sendbuf,
            recvbuf,
            caller_send,
            caller_recv,
            arena,
            barrier: BarrierPhase::Idle,
            barriers_done: 0,
            checked_coords: false,
            finished: false,
        }
    }

    /// The invocation tag this cursor executes under.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Whether the program has fully executed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Whether the plan requires a reduction operator at step time.
    pub fn needs_reduce_op(&self) -> bool {
        self.plan.io.needs_reduce_op
    }

    /// Recover the buffers after the program finished; the receive buffer
    /// holds the collective's result.
    ///
    /// # Panics
    ///
    /// Panics when the cursor has not reached [`StepOutcome::Done`].
    pub fn into_output(self) -> CursorOutput {
        assert!(self.finished, "cursor has not finished executing its plan");
        CursorOutput {
            sendbuf: self.sendbuf,
            recvbuf: self.recvbuf,
        }
    }

    /// Execute ops until the next one would block, the program ends, or
    /// nothing can be done.  `op` must be `Some` whenever the plan contains
    /// reductions ([`PlanCursor::needs_reduce_op`]).
    ///
    /// Returns [`StepOutcome::Advanced`] when any forward progress happened
    /// (including consuming barrier arrivals without passing the barrier),
    /// [`StepOutcome::Blocked`] when the cursor is waiting on peers, and
    /// [`StepOutcome::Done`] once the output buffer holds the result.
    pub fn step<C: NonBlockingComm>(&mut self, comm: &C, op: Option<&ReduceFn<'_>>) -> StepOutcome {
        if self.finished {
            return StepOutcome::Done;
        }
        if !self.checked_coords {
            assert_eq!(
                comm.rank(),
                self.plan.rank,
                "plan compiled for a different rank"
            );
            assert_eq!(
                comm.topology(),
                self.plan.topology,
                "plan compiled for a different topology"
            );
            self.checked_coords = true;
        }
        let mut advanced = false;
        while self.pc < self.plan.ops.len() {
            match self.step_one(comm, op) {
                StepOutcome::Advanced => advanced = true,
                StepOutcome::Blocked => {
                    return if advanced {
                        StepOutcome::Advanced
                    } else {
                        StepOutcome::Blocked
                    };
                }
                StepOutcome::Done => unreachable!("step_one never reports Done"),
            }
        }
        // Program drained: flush the deferred output writes and return every
        // scratch buffer to the arena for the next invocation.
        let mut arena = self.arena.borrow_mut();
        if let Some(out) = self.recvbuf.as_mut() {
            for (offset, data) in self.pending_out.drain(..) {
                out[offset..offset + data.len()].copy_from_slice(&data);
                arena.release(data);
            }
        } else {
            assert!(self.pending_out.is_empty(), "output writes need a buffer");
        }
        for slot in &mut self.vals {
            if let Some(buf) = slot.take() {
                arena.release(buf);
            }
        }
        // Unpack staged strided output back into the caller's buffer (gap
        // bytes preserved) and restore the originals, so `into_output`
        // returns the caller's extent-length buffers.
        if let Some(mut buf) = self.caller_recv.take() {
            let layout = self.plan.io.recv_layout.expect("staging implies a layout");
            let stage = self.recvbuf.take().expect("staged receive buffer");
            layout.unpack_bytes(&stage, &mut buf);
            arena.release(stage);
            self.recvbuf = Some(buf);
        }
        if let Some(buf) = self.caller_send.take() {
            let stage = self.sendbuf.take().expect("staged send buffer");
            arena.release(stage);
            self.sendbuf = Some(buf);
        }
        drop(arena);
        self.finished = true;
        StepOutcome::Done
    }

    /// Attempt exactly the op at `pc`; advances `pc` on completion.
    fn step_one<C: NonBlockingComm>(&mut self, comm: &C, op: Option<&ReduceFn<'_>>) -> StepOutcome {
        match &self.plan.ops[self.pc] {
            PlanOp::SharedAlloc { name, len } => {
                comm.shared_alloc(&self.names[*name as usize], *len);
            }
            PlanOp::SharedPublish { name, src } => {
                let data = self.materialize(src);
                comm.shared_publish(&self.names[*name as usize], &data);
                self.arena.borrow_mut().release(data);
            }
            PlanOp::SharedCollect { name, len, dst } => {
                let mut data = self.arena.borrow_mut().acquire(*len);
                comm.shared_collect_into(&self.names[*name as usize], *len, &mut data);
                self.store_val(*dst, data);
            }
            PlanOp::SharedWrite {
                owner_local,
                name,
                offset,
                src,
            } => {
                let data = self.materialize(src);
                comm.shared_write(*owner_local, &self.names[*name as usize], *offset, &data);
                self.arena.borrow_mut().release(data);
            }
            PlanOp::SharedRead {
                owner_local,
                name,
                offset,
                len,
                dst,
            } => {
                let mut data = self.arena.borrow_mut().acquire(*len);
                comm.shared_read_into(
                    *owner_local,
                    &self.names[*name as usize],
                    *offset,
                    *len,
                    &mut data,
                );
                self.store_val(*dst, data);
            }
            PlanOp::Send { dest, tag: t, src } => {
                let data = self.materialize(src);
                comm.send_owned(*dest, self.tag + t, data);
            }
            PlanOp::Recv {
                source,
                tag: t,
                len,
                dst,
            } => match comm.try_recv(*source, self.tag + t, *len) {
                Some(data) => self.store_val(*dst, data),
                None => return StepOutcome::Blocked,
            },
            PlanOp::Compress {
                dest,
                tag: t,
                src,
                codec,
                ..
            } => {
                let data = self.materialize(src);
                let frame = compress(&data, *codec);
                self.arena.borrow_mut().release(data);
                comm.send_owned(*dest, self.tag + t, frame);
            }
            PlanOp::Decompress {
                source,
                tag: t,
                raw_len,
                dst,
                codec,
                ..
            } => match comm.try_recv_unsized(*source, self.tag + t) {
                Some(frame) => {
                    let data = decompress(&frame, *raw_len, *codec);
                    self.store_val(*dst, data);
                }
                None => return StepOutcome::Blocked,
            },
            PlanOp::SendFromShared {
                owner_local,
                name,
                offset,
                len,
                dest,
                tag: t,
            } => {
                comm.send_from_shared(
                    *owner_local,
                    &self.names[*name as usize],
                    *offset,
                    *len,
                    *dest,
                    self.tag + t,
                );
            }
            PlanOp::RecvIntoShared {
                owner_local,
                name,
                offset,
                source,
                tag: t,
                len,
            } => match comm.try_recv(*source, self.tag + t, *len) {
                // The message is in hand, so depositing it in the peer's
                // region is the same single write `recv_into_shared` does.
                Some(data) => {
                    comm.shared_write(*owner_local, &self.names[*name as usize], *offset, &data);
                    self.arena.borrow_mut().release(data);
                }
                None => return StepOutcome::Blocked,
            },
            PlanOp::NodeBarrier => return self.step_barrier(comm),
            PlanOp::Reduce { dst, acc, other } => {
                let mut acc_bytes = self.materialize(acc);
                let other_bytes = self.materialize(other);
                let op = op.expect("plan requires a reduction operator");
                op(&mut acc_bytes, &other_bytes);
                self.arena.borrow_mut().release(other_bytes);
                self.store_val(*dst, acc_bytes);
            }
            PlanOp::CopyOut { offset, src } => {
                let data = self.materialize(src);
                self.pending_out.push((*offset, data));
            }
            PlanOp::ChargeCopy { bytes } => comm.charge_copy(*bytes),
            PlanOp::ChargeReduce { bytes } => comm.charge_reduce(*bytes),
            PlanOp::Delay { nanos } => comm.delay(*nanos),
        }
        self.pc += 1;
        StepOutcome::Advanced
    }

    /// Store `data` into value slot `dst`, releasing any previous buffer.
    fn store_val(&mut self, dst: u32, data: Vec<u8>) {
        store_val(&mut self.vals, &mut self.arena.borrow_mut(), dst, data);
    }

    /// Drive the pollable message barrier replacing [`PlanOp::NodeBarrier`].
    fn step_barrier<C: NonBlockingComm>(&mut self, comm: &C) -> StepOutcome {
        let ppn = comm.ppn();
        if ppn == 1 {
            return self.barrier_passed();
        }
        let leader = comm.rank() - comm.local_rank();
        let arrive_tag = self.tag + BARRIER_TAG_OFFSET + 2 * self.barriers_done;
        let release_tag = arrive_tag + 1;
        if comm.is_node_root() {
            if matches!(self.barrier, BarrierPhase::Idle) {
                self.barrier = BarrierPhase::Collecting {
                    arrived: vec![false; ppn],
                };
            }
            let BarrierPhase::Collecting { arrived } = &mut self.barrier else {
                unreachable!("leader barriers only collect");
            };
            let mut progressed = false;
            for (local, seen) in arrived.iter_mut().enumerate().skip(1) {
                if !*seen && comm.try_recv(leader + local, arrive_tag, 0).is_some() {
                    *seen = true;
                    progressed = true;
                }
            }
            if arrived[1..].iter().all(|&a| a) {
                for local in 1..ppn {
                    comm.send_owned(leader + local, release_tag, Vec::new());
                }
                return self.barrier_passed();
            }
            if progressed {
                StepOutcome::Advanced
            } else {
                StepOutcome::Blocked
            }
        } else {
            if matches!(self.barrier, BarrierPhase::Idle) {
                comm.send_owned(leader, arrive_tag, Vec::new());
                self.barrier = BarrierPhase::AwaitingRelease;
            }
            if comm.try_recv(leader, release_tag, 0).is_some() {
                self.barrier_passed()
            } else {
                StepOutcome::Blocked
            }
        }
    }

    fn barrier_passed(&mut self) -> StepOutcome {
        self.barrier = BarrierPhase::Idle;
        self.barriers_done += 1;
        self.pc += 1;
        StepOutcome::Advanced
    }

    /// Resolve a symbolic source against the owned buffers and runtime
    /// values into an arena-backed buffer (the cursor-side twin of the
    /// blocking executor's `materialize_into`).
    fn materialize(&self, src: &Src) -> Vec<u8> {
        let mut bytes = self.arena.borrow_mut().acquire(src.len());
        materialize_into(
            &mut bytes,
            src,
            &self.plan.io,
            self.sendbuf.as_deref(),
            self.recvbuf.as_deref(),
            &self.vals,
        );
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Comm, ThreadComm};
    use crate::plan::ir::IoShape;
    use crate::plan::record::{assemble, PlanComm, EXEC_PASSES};
    use pip_runtime::{Cluster, Topology};

    fn compile_exchange(rank: usize, topo: Topology) -> RankPlan {
        let passes = (0..EXEC_PASSES as u32)
            .map(|pass| {
                let comm = PlanComm::new(rank, topo, pass, Fidelity::Exec);
                let mut sendbuf = vec![0u8; 4];
                comm.fill_sendbuf(&mut sendbuf);
                let peer = 1 - rank;
                comm.send(peer, 0, &sendbuf);
                let got = comm.recv(peer, 0, 4);
                comm.node_barrier();
                comm.finish(Some(got))
            })
            .collect();
        assemble(
            rank,
            topo,
            Fidelity::Exec,
            IoShape {
                sendbuf: Some(4),
                recvbuf: Some(4),
                ..IoShape::default()
            },
            passes,
        )
    }

    /// A cursor-driven exchange (send, recv, node barrier) completes with
    /// real bytes and returns the buffers.
    #[test]
    fn cursor_completes_an_exchange_incrementally() {
        let topo = Topology::new(1, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            // Compiling is deterministic, so each task building its own plan
            // (Rc is not shareable across the task threads) changes nothing.
            let plan = Rc::new(compile_exchange(comm.rank(), topo));
            let sendbuf = vec![10 + comm.rank() as u8; 4];
            let mut cursor = PlanCursor::new(plan, Some(sendbuf), Some(vec![0u8; 4]), 7 << 16);
            let mut spins = 0u32;
            loop {
                match cursor.step(&comm, None) {
                    StepOutcome::Done => break,
                    StepOutcome::Advanced => {}
                    StepOutcome::Blocked => {
                        spins += 1;
                        assert!(spins < 1_000_000, "cursor spun without progress");
                        std::thread::yield_now();
                    }
                }
            }
            cursor.into_output().recvbuf.unwrap()
        })
        .unwrap();
        assert_eq!(results[0], vec![11; 4]);
        assert_eq!(results[1], vec![10; 4]);
    }

    #[test]
    #[should_panic(expected = "schedule-fidelity")]
    fn cursor_refuses_schedule_fidelity_plans() {
        let topo = Topology::new(1, 1);
        let comm = PlanComm::new(0, topo, 0, Fidelity::Schedule);
        comm.node_barrier();
        let plan = assemble(
            0,
            topo,
            Fidelity::Schedule,
            IoShape::default(),
            vec![comm.finish(None)],
        );
        let _ = PlanCursor::new(Rc::new(plan), None, None, 1 << 16);
    }

    #[test]
    #[should_panic(expected = "does not match the plan's shape")]
    fn cursor_rejects_wrong_buffer_lengths() {
        let topo = Topology::new(1, 2);
        let plan = Rc::new(compile_exchange(0, topo));
        let _ = PlanCursor::new(plan, Some(vec![0u8; 2]), Some(vec![0u8; 4]), 1 << 16);
    }

    // The tag-range scan it exercises is compiled into debug builds only.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "collides with the barrier tag range")]
    fn cursor_rejects_plans_using_barrier_tag_offsets() {
        let topo = Topology::new(1, 1);
        let plan = RankPlan {
            rank: 0,
            topology: topo,
            fidelity: Fidelity::Exec,
            io: IoShape::default(),
            names: Vec::new(),
            val_lens: vec![1],
            ops: vec![PlanOp::Recv {
                source: 0,
                tag: BARRIER_TAG_OFFSET,
                len: 1,
                dst: 0,
            }],
        };
        let _ = PlanCursor::new(Rc::new(plan), None, None, 1 << 16);
    }
}
