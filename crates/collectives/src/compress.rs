//! Error-bounded lossy compression for float streams (the C-Coll codec).
//!
//! The codec is SZ-flavoured: a Lorenzo-style 1-D predictor — each element
//! is predicted as the previously *decoded* element — with linear
//! quantization of the prediction residual against an absolute error
//! bound.  A stream is cut into fixed-size blocks and every block is
//! encoded either as bit-packed quantization codes (at the block's own
//! code width) or **verbatim** when quantization cannot hold the bound
//! (NaN/Inf, wild data, or a bound below the element type's precision).
//! The encoder replays the decoder's reconstruction of every element
//! before committing a quantized block, so `|decoded - original| <= bound`
//! holds unconditionally and incompressible data costs at most one type
//! byte per block over raw.
//!
//! Plans embed compressed transfers as fused
//! [`PlanOp::Compress`](crate::plan::PlanOp::Compress) /
//! [`PlanOp::Decompress`](crate::plan::PlanOp::Decompress) ops.  Because
//! plans are symbolic, the byte count a compressed send contributes to a
//! lowered trace must be deterministic: [`calibrated_wire_bytes`]
//! compresses a synthetic smooth stream of matching length once per
//! `(length, codec)` and both endpoints stamp that size into their ops.
//! Live execution ships the real variable-length frame (received with the
//! unsized receive entry points, which skip the exact-length assertion).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Element type of a compressed float stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatElem {
    /// IEEE-754 binary32 (`f32`) little-endian elements.
    F32,
    /// IEEE-754 binary64 (`f64`) little-endian elements.
    F64,
}

impl FloatElem {
    /// Byte width of one element.
    pub fn size(self) -> usize {
        match self {
            FloatElem::F32 => 4,
            FloatElem::F64 => 8,
        }
    }

    /// The element type with the given byte width (4 or 8), if any.
    pub fn for_size(size: usize) -> Option<FloatElem> {
        match size {
            4 => Some(FloatElem::F32),
            8 => Some(FloatElem::F64),
            _ => None,
        }
    }
}

/// Element types the error-bounded codec can compress.  Implemented by the
/// IEEE-754 floats only; integer and user-defined element types have no
/// meaningful "absolute error bound" and always travel exact.
pub trait FloatDatatype: crate::datatype::Datatype {
    /// Codec element width of this type.
    const ELEM: FloatElem;
}

impl FloatDatatype for f32 {
    const ELEM: FloatElem = FloatElem::F32;
}

impl FloatDatatype for f64 {
    const ELEM: FloatElem = FloatElem::F64;
}

/// Wire codec for one compressed transfer: the element type plus the
/// absolute error bound every decoded element is guaranteed to satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Codec {
    /// Element type of the stream.
    pub elem: FloatElem,
    /// Absolute per-element error bound (`|decoded - original| <= bound`).
    pub bound: f64,
}

/// User-facing compression policy for a collective: the end-to-end error
/// bound on the *result* and the message size below which transfers stay
/// exact.  The per-hop codec bound is derived from `bound` by dividing by
/// the schedule's worst-case hop count (see the plan rewrite pass).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionPolicy {
    /// Absolute element-wise error bound on the collective's result.
    pub bound: f64,
    /// Messages smaller than this many bytes are sent uncompressed.
    pub min_wire_bytes: usize,
}

/// Elements per encoded block.
const BLOCK: usize = 256;
/// Block type byte: raw little-endian element bytes follow.
const TYPE_VERBATIM: u8 = 0;
/// Block type byte: a code-width byte and bit-packed quantization codes
/// follow.
const TYPE_QUANTIZED: u8 = 1;
/// Quantization codes beyond this magnitude force a verbatim block (keeps
/// `round()` and zigzag arithmetic far from `i64` overflow).
const MAX_CODE_MAGNITUDE: f64 = (1u64 << 40) as f64;

/// Quantization step for a bound.  A hair under `2 * bound` so a residual
/// sitting exactly on a bin midpoint (e.g. `0.125` at bound `1e-3`) still
/// reconstructs strictly within the bound after f64 rounding, instead of
/// overshooting by one ulp and forcing the block verbatim.  Encoder and
/// decoder must agree on this — both call here.
fn quant_step(bound: f64) -> f64 {
    2.0 * bound * (1.0 - 1e-9)
}

/// Read one element at `bytes` (little-endian) as `f64`.
fn load(elem: FloatElem, bytes: &[u8]) -> f64 {
    match elem {
        FloatElem::F32 => f32::from_le_bytes(bytes[..4].try_into().unwrap()) as f64,
        FloatElem::F64 => f64::from_le_bytes(bytes[..8].try_into().unwrap()),
    }
}

/// Append one element to `out` (little-endian).
fn store(elem: FloatElem, value: f64, out: &mut Vec<u8>) {
    match elem {
        FloatElem::F32 => out.extend_from_slice(&(value as f32).to_le_bytes()),
        FloatElem::F64 => out.extend_from_slice(&value.to_le_bytes()),
    }
}

/// The value the decoder will actually hold after storing `value` at the
/// element type's precision — the encoder predicts and verifies against
/// this, never against its own full-precision intermediate.
fn round_store(elem: FloatElem, value: f64) -> f64 {
    match elem {
        FloatElem::F32 => value as f32 as f64,
        FloatElem::F64 => value,
    }
}

fn zigzag(code: i64) -> u64 {
    ((code << 1) ^ (code >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Bit-pack `codes` at `bits` bits each, LSB first.
fn pack_bits(codes: &[u64], bits: u8, out: &mut Vec<u8>) {
    if bits == 0 {
        return;
    }
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    for &code in codes {
        acc |= code << filled;
        filled += u32::from(bits);
        while filled >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push(acc as u8);
    }
}

/// Inverse of [`pack_bits`]: read `count` codes of `bits` bits each.
fn unpack_bits(bytes: &[u8], bits: u8, count: usize) -> Vec<u64> {
    if bits == 0 {
        return vec![0; count];
    }
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    let mut pos = 0;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        while filled < u32::from(bits) {
            acc |= u64::from(bytes[pos]) << filled;
            pos += 1;
            filled += 8;
        }
        out.push(acc & mask);
        acc >>= bits;
        filled -= u32::from(bits);
    }
    out
}

/// Try to quantize one block, predicting the first element from `prev_in`
/// (the last decoded element of the previous block, or `0.0` at stream
/// start).  Returns the zigzagged codes, their bit width and the block's
/// last decoded value, or `None` when any element cannot be reconstructed
/// within the bound (the block must then go verbatim).
fn quantize_block(values: &[f64], codec: Codec, prev_in: f64) -> Option<(u8, Vec<u64>, f64)> {
    let step = quant_step(codec.bound);
    if !step.is_finite() || step <= 0.0 {
        return None;
    }
    let mut prev = prev_in;
    let mut codes = Vec::with_capacity(values.len());
    let mut max_code: u64 = 0;
    for &orig in values {
        // Deadband: when the prediction already satisfies the bound, emit
        // code zero.  Nearest-rounding alone would oscillate +-1 forever on
        // residuals near a half step; the deadband keeps constant streams
        // stationary (all-zero codes, zero-width blocks).
        let code = if (prev - orig).abs() <= codec.bound {
            0i64
        } else {
            let scaled = (orig - prev) / step;
            if !scaled.is_finite() || scaled.abs() >= MAX_CODE_MAGNITUDE {
                return None;
            }
            scaled.round_ties_even() as i64
        };
        let recon = round_store(codec.elem, prev + code as f64 * step);
        // The one check the bound rests on: replay the decoder and reject
        // the block unless this element really lands within `bound` — a
        // NaN error (non-finite input) must reject too.
        let err = (recon - orig).abs();
        if err.is_nan() || err > codec.bound {
            return None;
        }
        let z = zigzag(code);
        max_code = max_code.max(z);
        codes.push(z);
        prev = recon;
    }
    let bits = (64 - max_code.leading_zeros()) as u8;
    Some((bits, codes, prev))
}

/// Compress a little-endian float stream under `codec`.
///
/// # Panics
///
/// Panics when `data.len()` is not a multiple of the element width.
pub fn compress(data: &[u8], codec: Codec) -> Vec<u8> {
    let elem = codec.elem.size();
    assert_eq!(
        data.len() % elem,
        0,
        "compressed stream must be whole elements"
    );
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut prev = 0.0f64;
    for chunk in data.chunks(BLOCK * elem) {
        let values: Vec<f64> = chunk
            .chunks_exact(elem)
            .map(|b| load(codec.elem, b))
            .collect();
        let quantized = quantize_block(&values, codec, prev);
        let verbatim_len = 1 + chunk.len();
        match quantized {
            Some((bits, ref codes, prev_out))
                if 2 + (codes.len() * usize::from(bits)).div_ceil(8) < verbatim_len =>
            {
                out.push(TYPE_QUANTIZED);
                out.push(bits);
                pack_bits(codes, bits, &mut out);
                prev = prev_out;
            }
            _ => {
                out.push(TYPE_VERBATIM);
                out.extend_from_slice(chunk);
                // A verbatim block decodes bit-exactly, so the decoder's
                // predictor state is the block's last original value.
                prev = *values.last().expect("blocks are non-empty");
            }
        }
    }
    out
}

/// Decompress a frame produced by [`compress`] back into `raw_len` bytes
/// of little-endian elements.
///
/// # Panics
///
/// Panics on a malformed frame (frames only travel between the codec's
/// own endpoints; corruption is a logic error, not an input condition).
pub fn decompress(frame: &[u8], raw_len: usize, codec: Codec) -> Vec<u8> {
    let elem = codec.elem.size();
    assert_eq!(raw_len % elem, 0, "raw length must be whole elements");
    let step = quant_step(codec.bound);
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0;
    let mut remaining = raw_len / elem;
    let mut prev = 0.0f64;
    while remaining > 0 {
        let count = remaining.min(BLOCK);
        match frame[pos] {
            TYPE_VERBATIM => {
                pos += 1;
                out.extend_from_slice(&frame[pos..pos + count * elem]);
                pos += count * elem;
                prev = load(codec.elem, &out[out.len() - elem..]);
            }
            TYPE_QUANTIZED => {
                let bits = frame[pos + 1];
                pos += 2;
                let packed = (count * usize::from(bits)).div_ceil(8);
                let codes = unpack_bits(&frame[pos..pos + packed], bits, count);
                pos += packed;
                for z in codes {
                    let code = unzigzag(z);
                    let value = round_store(codec.elem, prev + code as f64 * step);
                    store(codec.elem, value, &mut out);
                    prev = value;
                }
            }
            other => panic!("corrupt compressed frame: unknown block type {other}"),
        }
        remaining -= count;
    }
    assert_eq!(pos, frame.len(), "trailing bytes in compressed frame");
    out
}

/// Deterministic smooth calibration stream: the value of element `i`.
///
/// Plans are symbolic, so the byte count a compressed send contributes to
/// a lowered trace cannot depend on runtime payloads.  Both endpoints of a
/// rewritten transfer instead price the wire with the compressed size of
/// this stream — a slow sine typical of the smooth scientific fields
/// lossy-compressed collectives target.
fn calibration_value(i: usize) -> f64 {
    (i as f64 * 0.001).sin() * 10.0
}

/// The wire size a `raw_len`-byte transfer under `codec` is priced at in
/// lowered traces: the compressed size of the deterministic calibration
/// stream of the same length.  Cached process-wide per `(length, codec)`.
pub fn calibrated_wire_bytes(raw_len: usize, codec: Codec) -> usize {
    static CACHE: Mutex<BTreeMap<(usize, u8, u64), usize>> = Mutex::new(BTreeMap::new());
    let key = (raw_len, codec.elem.size() as u8, codec.bound.to_bits());
    if let Some(&size) = CACHE.lock().unwrap().get(&key) {
        return size;
    }
    let elem = codec.elem.size();
    let count = raw_len / elem;
    let mut data = Vec::with_capacity(raw_len);
    for i in 0..count {
        store(codec.elem, calibration_value(i), &mut data);
    }
    let size = compress(&data, codec).len();
    CACHE.lock().unwrap().insert(key, size);
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_bytes(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn f32_bytes(values: &[f32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn assert_bound_f64(original: &[u8], decoded: &[u8], bound: f64) {
        for (o, d) in original.chunks_exact(8).zip(decoded.chunks_exact(8)) {
            let o = f64::from_le_bytes(o.try_into().unwrap());
            let d = f64::from_le_bytes(d.try_into().unwrap());
            if o.is_finite() {
                assert!((d - o).abs() <= bound, "|{d} - {o}| > {bound}");
            } else {
                assert_eq!(o.to_bits(), d.to_bits(), "non-finite must pass verbatim");
            }
        }
    }

    #[test]
    fn smooth_stream_round_trips_within_bound_and_compresses() {
        for &bound in &[1e-2, 1e-4, 1e-6] {
            let codec = Codec {
                elem: FloatElem::F64,
                bound,
            };
            let values: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin() * 3.0).collect();
            let raw = f64_bytes(&values);
            let frame = compress(&raw, codec);
            assert!(
                frame.len() * 4 <= raw.len(),
                "smooth f64 stream should compress >= 4x at bound {bound} \
                 (got {} from {})",
                frame.len(),
                raw.len()
            );
            let decoded = decompress(&frame, raw.len(), codec);
            assert_eq!(decoded.len(), raw.len());
            assert_bound_f64(&raw, &decoded, bound);
        }
    }

    #[test]
    fn f32_streams_hold_the_bound_despite_storage_rounding() {
        let codec = Codec {
            elem: FloatElem::F32,
            bound: 1e-3,
        };
        let values: Vec<f32> = (0..1000)
            .map(|i| ((i as f32 * 0.02).sin() * 100.0) + i as f32)
            .collect();
        let raw = f32_bytes(&values);
        let frame = compress(&raw, codec);
        let decoded = decompress(&frame, raw.len(), codec);
        for (o, d) in raw.chunks_exact(4).zip(decoded.chunks_exact(4)) {
            let o = f32::from_le_bytes(o.try_into().unwrap()) as f64;
            let d = f32::from_le_bytes(d.try_into().unwrap()) as f64;
            assert!((d - o).abs() <= codec.bound);
        }
    }

    #[test]
    fn incompressible_stream_expands_at_most_one_byte_per_block() {
        let codec = Codec {
            elem: FloatElem::F64,
            bound: 1e-12,
        };
        // Pseudo-random wild magnitudes: residuals dwarf the bound, so
        // quantization codes would be astronomical and blocks go verbatim.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let values: Vec<f64> = (0..2048)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e18
            })
            .collect();
        let raw = f64_bytes(&values);
        let frame = compress(&raw, codec);
        assert!(frame.len() <= raw.len() + raw.len().div_ceil(BLOCK * 8));
        let decoded = decompress(&frame, raw.len(), codec);
        assert_eq!(decoded, raw, "verbatim blocks must be bit-exact");
    }

    #[test]
    fn non_finite_values_pass_through_verbatim() {
        let codec = Codec {
            elem: FloatElem::F64,
            bound: 0.5,
        };
        let values = vec![1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -2.0];
        let raw = f64_bytes(&values);
        let frame = compress(&raw, codec);
        let decoded = decompress(&frame, raw.len(), codec);
        assert_eq!(decoded, raw, "a block holding NaN/Inf must be verbatim");
    }

    #[test]
    fn zero_bound_degenerates_to_bit_exact_verbatim() {
        let codec = Codec {
            elem: FloatElem::F32,
            bound: 0.0,
        };
        let values: Vec<f32> = (0..700).map(|i| (i as f32).sqrt()).collect();
        let raw = f32_bytes(&values);
        let frame = compress(&raw, codec);
        let decoded = decompress(&frame, raw.len(), codec);
        assert_eq!(decoded, raw);
    }

    #[test]
    fn empty_stream_round_trips() {
        let codec = Codec {
            elem: FloatElem::F64,
            bound: 1e-3,
        };
        let frame = compress(&[], codec);
        assert!(frame.is_empty());
        assert!(decompress(&frame, 0, codec).is_empty());
    }

    #[test]
    fn constant_stream_collapses_to_near_nothing() {
        let codec = Codec {
            elem: FloatElem::F64,
            bound: 1e-3,
        };
        let raw = f64_bytes(&vec![0.125f64; 4096]);
        let frame = compress(&raw, codec);
        // All residuals after the first element are zero; blocks carry two
        // header bytes plus (at most) a handful of packed bits each.
        assert!(
            frame.len() < raw.len() / 100,
            "constant stream should collapse (got {})",
            frame.len()
        );
        let decoded = decompress(&frame, raw.len(), codec);
        assert_bound_f64(&raw, &decoded, codec.bound);
    }

    #[test]
    fn calibrated_wire_bytes_is_deterministic_and_smaller() {
        let codec = Codec {
            elem: FloatElem::F32,
            bound: 1e-3,
        };
        let a = calibrated_wire_bytes(1 << 20, codec);
        let b = calibrated_wire_bytes(1 << 20, codec);
        assert_eq!(a, b);
        assert!(
            a * 4 <= 1 << 20,
            "calibration stream should compress >= 4x (got {a})"
        );
        // A different bound must calibrate independently.
        let tighter = calibrated_wire_bytes(
            1 << 20,
            Codec {
                elem: FloatElem::F32,
                bound: 1e-6,
            },
        );
        assert!(tighter >= a);
    }
}
