//! Classic *single-leader* (single-object) two-level collectives.
//!
//! These are the node-aware algorithms MVAPICH2- and Intel-MPI-class
//! libraries use: exactly one process per node (the leader, local rank 0)
//! talks to the network; every other process moves its data to or from the
//! leader through node-local shared memory.  They are the design PiP-MColl's
//! multi-object algorithms improve on: with one leader per node the adapter
//! sees only one injecting process, so small-message collectives are limited
//! by that single process's message rate.
//!
//! Intra-node staging is expressed with the `Comm` shared-memory operations,
//! so the simulator charges it at whatever transport the comparator library
//! uses (POSIX-SHMEM double copy, CMA, XPMEM or PiP).

use crate::comm::{Comm, ReduceFn};
use crate::recursive_doubling::largest_pow2_leq;

fn region(tag: u64, what: &str) -> String {
    format!("hier_{what}_{tag}")
}

/// Single-leader hierarchical allgather.
///
/// 1. Intra-node gather into the leader's staging buffer (stored in
///    *rotated node order*: the own node's block first).
/// 2. Bruck allgather of node blocks among the leaders, sending straight out
///    of / receiving straight into the staging buffer.
/// 3. Every process copies the result out of the leader's staging buffer.
pub fn allgather_hierarchical<C: Comm>(comm: &C, sendbuf: &[u8], recvbuf: &mut [u8], tag: u64) {
    let p = comm.world_size();
    let block = sendbuf.len();
    assert_eq!(recvbuf.len(), p * block);
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let node_block = ppn * block;
    let name = region(tag, "ag");

    if nodes == 1 {
        // Pure intra-node: gather into the leader's buffer and read back.
        if comm.is_node_root() {
            comm.shared_alloc(&name, node_block);
        }
        comm.node_barrier();
        comm.shared_write(0, &name, local * block, sendbuf);
        comm.node_barrier();
        let data = comm.shared_read(0, &name, 0, node_block);
        recvbuf.copy_from_slice(&data);
        return;
    }

    // Step 1: intra-node gather into the leader's staging buffer.  The
    // buffer is in rotated node order (own node at position 0), so locals
    // write at offset `local * block` inside position 0.
    if comm.is_node_root() {
        comm.shared_alloc(&name, nodes * node_block);
    }
    comm.node_barrier();
    comm.shared_write(0, &name, local * block, sendbuf);
    comm.node_barrier();

    // Step 2: Bruck allgather over the leaders, node-block granularity.
    if comm.is_node_root() {
        let mut have = 1usize;
        let mut step = 1usize;
        let mut round = 0u64;
        while step < nodes {
            let count = step.min(nodes - have);
            let dst_node = (node + nodes - step) % nodes;
            let src_node = (node + step) % nodes;
            let dst = comm.topology().node_root(dst_node);
            let src = comm.topology().node_root(src_node);
            comm.send_from_shared(0, &name, 0, count * node_block, dst, tag + round);
            comm.recv_into_shared(
                0,
                &name,
                have * node_block,
                src,
                tag + round,
                count * node_block,
            );
            have += count;
            step <<= 1;
            round += 1;
        }
        debug_assert_eq!(have, nodes);
    }
    comm.node_barrier();

    // Step 3: every process copies the gathered data out, un-rotating the
    // node order (two contiguous reads).
    let split = (nodes - node) * node_block;
    let tail = comm.shared_read(0, &name, 0, split);
    recvbuf[node * node_block..].copy_from_slice(&tail);
    if node > 0 {
        let head = comm.shared_read(0, &name, split, node * node_block);
        recvbuf[..node * node_block].copy_from_slice(&head);
    }
    comm.node_barrier();
}

/// Single-leader hierarchical scatter from global rank `root`.
///
/// 1. The root scatters node blocks to each node's representative (the root
///    itself on its own node, the leader elsewhere) over a binomial tree.
/// 2. Each representative stages its node block in shared memory; every
///    local process copies its own block out.
pub fn scatter_hierarchical<C: Comm>(
    comm: &C,
    sendbuf: Option<&[u8]>,
    recvbuf: &mut [u8],
    root: usize,
    tag: u64,
) {
    let block = recvbuf.len();
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let rank = comm.rank();
    let node_block = ppn * block;
    let topo = comm.topology();
    let root_node = topo.node_of(root);
    let name = region(tag, "sc");

    // The per-node representative for the inter-node phase.
    let rep_of = |n: usize| -> usize {
        if n == root_node {
            root
        } else {
            topo.node_root(n)
        }
    };
    let my_rep = rep_of(node);
    let i_am_rep = rank == my_rep;

    // Step 1: binomial scatter of node blocks over representatives, in
    // virtual node order rooted at the root's node.
    let mut staged: Vec<u8> = Vec::new();
    if i_am_rep {
        let vnode = (node + nodes - root_node) % nodes;
        let mut tmp = vec![0u8; nodes * node_block];
        let mut curr_blocks = 0usize;
        if rank == root {
            let sendbuf = sendbuf.expect("root must supply a send buffer");
            assert_eq!(sendbuf.len(), comm.world_size() * block);
            for i in 0..nodes {
                let abs_node = (root_node + i) % nodes;
                tmp[i * node_block..(i + 1) * node_block]
                    .copy_from_slice(&sendbuf[abs_node * node_block..(abs_node + 1) * node_block]);
            }
            if root_node != 0 {
                comm.charge_copy(nodes * node_block);
            }
            curr_blocks = nodes;
        }
        let mut mask = 1usize;
        while mask < nodes {
            if vnode & mask != 0 {
                let src_node = ((vnode - mask) + root_node) % nodes;
                let recv_blocks = mask.min(nodes - vnode);
                let data = comm.recv(rep_of(src_node), tag, recv_blocks * node_block);
                tmp[..recv_blocks * node_block].copy_from_slice(&data);
                curr_blocks = recv_blocks;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vnode + mask < nodes {
                let dst_node = ((vnode + mask) + root_node) % nodes;
                let send_blocks = curr_blocks - mask;
                comm.send(
                    rep_of(dst_node),
                    tag,
                    &tmp[mask * node_block..(mask + send_blocks) * node_block],
                );
                curr_blocks -= send_blocks;
            }
            mask >>= 1;
        }
        staged = tmp[..node_block].to_vec();
    }

    // Step 2: the representative stages its node block; locals copy out.
    if i_am_rep {
        comm.shared_alloc(&name, node_block);
        comm.shared_write(topo.local_rank_of(my_rep), &name, 0, &staged);
    }
    comm.node_barrier();
    let data = comm.shared_read(topo.local_rank_of(my_rep), &name, local * block, block);
    recvbuf.copy_from_slice(&data);
    comm.node_barrier();
}

/// Single-leader hierarchical broadcast from global rank `root`.
pub fn bcast_hierarchical<C: Comm>(comm: &C, buf: &mut [u8], root: usize, tag: u64) {
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let rank = comm.rank();
    let topo = comm.topology();
    let root_node = topo.node_of(root);
    let len = buf.len();
    let name = region(tag, "bc");

    let rep_of = |n: usize| -> usize {
        if n == root_node {
            root
        } else {
            topo.node_root(n)
        }
    };
    let my_rep = rep_of(node);
    let i_am_rep = rank == my_rep;

    // Step 1: binomial broadcast among representatives.
    if i_am_rep && nodes > 1 {
        let vnode = (node + nodes - root_node) % nodes;
        let mut mask = 1usize;
        while mask < nodes {
            if vnode & mask != 0 {
                let src_node = ((vnode - mask) + root_node) % nodes;
                let data = comm.recv(rep_of(src_node), tag, len);
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vnode + mask < nodes {
                let dst_node = ((vnode + mask) + root_node) % nodes;
                comm.send(rep_of(dst_node), tag, buf);
            }
            mask >>= 1;
        }
    }

    // Step 2: stage in shared memory and copy out on every non-rep process.
    if i_am_rep {
        comm.shared_alloc(&name, len);
        comm.shared_write(topo.local_rank_of(my_rep), &name, 0, buf);
    }
    comm.node_barrier();
    if !i_am_rep {
        let data = comm.shared_read(topo.local_rank_of(my_rep), &name, 0, len);
        buf.copy_from_slice(&data);
    }
    comm.node_barrier();
}

/// Single-leader hierarchical allreduce for a commutative `op`.
///
/// 1. Intra-node: every process deposits its vector in the leader's slot
///    buffer; the leader reduces the node's contributions.
/// 2. Leaders run a recursive-doubling allreduce among themselves.
/// 3. The leader publishes the result; locals copy it out.
pub fn allreduce_hierarchical<C: Comm>(comm: &C, buf: &mut [u8], op: &ReduceFn<'_>, tag: u64) {
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let len = buf.len();
    let topo = comm.topology();
    let slots = region(tag, "ar_slots");
    let result = region(tag, "ar_result");

    // Step 1: deposit contributions.
    if comm.is_node_root() {
        comm.shared_alloc(&slots, ppn * len);
        comm.shared_alloc(&result, len);
    }
    comm.node_barrier();
    if !comm.is_node_root() {
        comm.shared_write(0, &slots, local * len, buf);
    }
    comm.node_barrier();

    if comm.is_node_root() {
        // Reduce the node's contributions into the leader's private buffer.
        for peer in 1..ppn {
            let contribution = comm.shared_read(0, &slots, peer * len, len);
            op(buf, &contribution);
            comm.charge_reduce(len);
        }

        // Step 2: recursive-doubling allreduce among leaders.
        if nodes > 1 {
            let pof2 = largest_pow2_leq(nodes);
            let rem = nodes - pof2;
            let leader_of = |n: usize| topo.node_root(n);
            let newnode: isize = if node < 2 * rem {
                if node.is_multiple_of(2) {
                    comm.send(leader_of(node + 1), tag, buf);
                    -1
                } else {
                    let data = comm.recv(leader_of(node - 1), tag, len);
                    op(buf, &data);
                    comm.charge_reduce(len);
                    (node / 2) as isize
                }
            } else {
                (node - rem) as isize
            };
            if newnode >= 0 {
                let newnode = newnode as usize;
                let to_node = |nn: usize| if nn < rem { nn * 2 + 1 } else { nn + rem };
                let mut mask = 1usize;
                let mut round = 1u64;
                while mask < pof2 {
                    let partner = leader_of(to_node(newnode ^ mask));
                    let received =
                        comm.sendrecv(partner, tag + round, buf, partner, tag + round, len);
                    op(buf, &received);
                    comm.charge_reduce(len);
                    mask <<= 1;
                    round += 1;
                }
            }
            if node < 2 * rem {
                if node.is_multiple_of(2) {
                    let data = comm.recv(leader_of(node + 1), tag + 63, len);
                    buf.copy_from_slice(&data);
                } else {
                    comm.send(leader_of(node - 1), tag + 63, buf);
                }
            }
        }

        // Step 3: publish.
        comm.shared_write(0, &result, 0, buf);
    }
    comm.node_barrier();
    if !comm.is_node_root() {
        let data = comm.shared_read(0, &result, 0, len);
        buf.copy_from_slice(&data);
    }
    comm.node_barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run_allgather(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            allgather_hierarchical(&comm, &sendbuf, &mut recvbuf, 2100);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected, "hier allgather mismatch at rank {rank}");
        }
    }

    fn run_scatter(nodes: usize, ppn: usize, block: usize, root: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let sendbuf = oracle::rank_payload(root, world * block);
        let expected = oracle::scatter(&sendbuf, world);
        let sendbuf_ref = &sendbuf;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut recvbuf = vec![0u8; block];
            let send = (comm.rank() == root).then_some(sendbuf_ref.as_slice());
            scatter_hierarchical(&comm, send, &mut recvbuf, root, 2300);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected[rank], "hier scatter mismatch at rank {rank}");
        }
    }

    fn run_bcast(nodes: usize, ppn: usize, len: usize, root: usize) {
        let topo = Topology::new(nodes, ppn);
        let expected = oracle::rank_payload(root, len);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = if comm.rank() == root {
                oracle::rank_payload(root, len)
            } else {
                vec![0u8; len]
            };
            bcast_hierarchical(&comm, &mut buf, root, 2500);
            buf
        })
        .unwrap();
        for buf in &results {
            assert_eq!(buf, &expected);
        }
    }

    fn run_allreduce(nodes: usize, ppn: usize, len: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = oracle::rank_payload(comm.rank(), len);
            allreduce_hierarchical(&comm, &mut buf, &oracle::wrapping_add_u8, 2700);
            buf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected, "hier allreduce mismatch at rank {rank}");
        }
    }

    #[test]
    fn allreduce_hierarchical_typed_f64_min_propagates_nan() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(2, 3);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let input: [f64; 3] = if comm.rank() == 4 {
                [f64::NAN, -0.0, 4.0]
            } else {
                [comm.rank() as f64, 0.0, comm.rank() as f64]
            };
            let mut buf = to_bytes(&input);
            let kernel = ReduceKernel::of::<f64>(ReduceOp::Min);
            allreduce_hierarchical(&comm, &mut buf, kernel.as_fn(), 2750);
            from_bytes::<f64>(&buf)
        })
        .unwrap();
        for (rank, out) in results.iter().enumerate() {
            assert!(out[0].is_nan(), "rank {rank}: NaN must win the min");
            // total_cmp ordering: -0.0 < +0.0, so the -0.0 contribution wins.
            assert!(
                out[1] == 0.0 && out[1].is_sign_negative(),
                "rank {rank}: min must pick -0.0 over +0.0"
            );
            assert_eq!(out[2], 0.0, "rank {rank}: clean lane takes the true min");
        }
    }

    #[test]
    fn allgather_two_nodes() {
        run_allgather(2, 3, 16);
    }

    #[test]
    fn allgather_non_power_of_two_nodes() {
        run_allgather(3, 2, 8);
    }

    #[test]
    fn allgather_single_node() {
        run_allgather(1, 4, 8);
    }

    #[test]
    fn allgather_many_nodes_one_rank_each() {
        run_allgather(6, 1, 4);
    }

    #[test]
    fn allgather_wide_nodes() {
        run_allgather(4, 5, 4);
    }

    #[test]
    fn scatter_root_zero() {
        run_scatter(3, 3, 8, 0);
    }

    #[test]
    fn scatter_root_is_leader_of_middle_node() {
        run_scatter(3, 2, 8, 2);
    }

    #[test]
    fn scatter_root_is_not_a_leader() {
        run_scatter(2, 3, 16, 4);
    }

    #[test]
    fn scatter_single_node() {
        run_scatter(1, 5, 8, 2);
    }

    #[test]
    fn bcast_root_zero() {
        run_bcast(3, 2, 64, 0);
    }

    #[test]
    fn bcast_root_not_a_leader() {
        run_bcast(2, 4, 32, 5);
    }

    #[test]
    fn bcast_single_node() {
        run_bcast(1, 3, 16, 1);
    }

    #[test]
    fn allreduce_two_nodes() {
        run_allreduce(2, 3, 32);
    }

    #[test]
    fn allreduce_odd_nodes() {
        run_allreduce(5, 2, 16);
    }

    #[test]
    fn allreduce_single_node() {
        run_allreduce(1, 4, 24);
    }

    #[test]
    fn allgather_trace_only_leaders_touch_the_network() {
        let topo = Topology::new(4, 3);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; 32];
            let mut recvbuf = vec![0u8; comm.world_size() * 32];
            allgather_hierarchical(comm, &sendbuf, &mut recvbuf, 1);
        });
        trace.validate().unwrap();
        for (rank, rank_trace) in trace.ranks.iter().enumerate() {
            let is_leader = topo.is_node_root(rank);
            if is_leader {
                assert!(rank_trace.send_count() > 0, "leader {rank} must send");
            } else {
                assert_eq!(
                    rank_trace.send_count(),
                    0,
                    "non-leader {rank} must not send"
                );
            }
        }
    }

    #[test]
    fn scatter_trace_single_sender_per_node_pair() {
        let topo = Topology::new(4, 2);
        let sendbuf = vec![0u8; topo.world_size() * 16];
        let trace = record_trace(topo, |comm| {
            let mut recvbuf = vec![0u8; 16];
            let send = (comm.rank() == 0).then_some(sendbuf.as_slice());
            scatter_hierarchical(comm, send, &mut recvbuf, 0, 1);
        });
        trace.validate().unwrap();
        // Only representatives (leaders) exchange network messages.
        let senders = trace
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.send_count() > 0)
            .map(|(r, _)| r)
            .collect::<Vec<_>>();
        for rank in senders {
            assert!(topo.is_node_root(rank));
        }
    }
}
