//! Bruck algorithms: the classical small-message allgather for arbitrary
//! (especially non-power-of-two) process counts, and the Bruck alltoall.
//!
//! The Bruck allgather runs in `ceil(log2 p)` rounds; in round `i` every rank
//! sends everything it has gathered so far (up to `2^i` blocks) to
//! `rank - 2^i` and receives as much from `rank + 2^i`.  The buffer is kept
//! in *rotated* order (own block first) and shifted back at the end.

use crate::comm::Comm;

/// Bruck allgather: every rank contributes `sendbuf`; `recvbuf` receives all
/// contributions in rank order (identical on every rank).
pub fn allgather_bruck<C: Comm>(comm: &C, sendbuf: &[u8], recvbuf: &mut [u8], tag: u64) {
    let p = comm.world_size();
    let rank = comm.rank();
    let block = sendbuf.len();
    assert_eq!(recvbuf.len(), p * block, "recvbuf must hold world blocks");
    if p == 1 {
        recvbuf.copy_from_slice(sendbuf);
        return;
    }

    // Rotated working buffer: position i holds the block of rank (rank + i) % p.
    let mut tmp = vec![0u8; p * block];
    tmp[..block].copy_from_slice(sendbuf);

    let mut have = 1usize; // blocks gathered so far
    let mut step = 1usize;
    let mut round = 0u64;
    while step < p {
        let count = step.min(p - have);
        let dst = (rank + p - step) % p;
        let src = (rank + step) % p;
        let received = comm.sendrecv(
            dst,
            tag + round,
            &tmp[..count * block],
            src,
            tag + round,
            count * block,
        );
        tmp[have * block..(have + count) * block].copy_from_slice(&received);
        have += count;
        step <<= 1;
        round += 1;
    }
    debug_assert_eq!(have, p);

    // Shift back into absolute rank order: block of rank j is at rotated
    // position (j - rank) mod p.
    for j in 0..p {
        let pos = (j + p - rank) % p;
        recvbuf[j * block..(j + 1) * block].copy_from_slice(&tmp[pos * block..(pos + 1) * block]);
    }
    comm.charge_copy(p * block);
}

/// Bruck alltoall: rank `i`'s input block `j` ends up as rank `j`'s output
/// block `i`.  Runs in `ceil(log2 p)` rounds exchanging roughly half the
/// buffer each round — the small-message alltoall of MPICH.
pub fn alltoall_bruck<C: Comm>(comm: &C, sendbuf: &[u8], recvbuf: &mut [u8], tag: u64) {
    let p = comm.world_size();
    let rank = comm.rank();
    assert_eq!(sendbuf.len(), recvbuf.len());
    assert_eq!(sendbuf.len() % p, 0, "buffers must hold world blocks");
    let block = sendbuf.len() / p;
    if p == 1 {
        recvbuf.copy_from_slice(sendbuf);
        return;
    }

    // Phase 1: local rotation so that the block destined for rank
    // (rank + i) % p sits at position i.
    let mut tmp = vec![0u8; p * block];
    for i in 0..p {
        let src_block = (rank + i) % p;
        tmp[i * block..(i + 1) * block]
            .copy_from_slice(&sendbuf[src_block * block..(src_block + 1) * block]);
    }
    comm.charge_copy(p * block);

    // Phase 2: log rounds; in round k every block whose position has bit k
    // set is sent to rank + 2^k and replaced by the blocks received from
    // rank - 2^k.
    let mut round = 0u64;
    let mut pof2 = 1usize;
    while pof2 < p {
        let dst = (rank + pof2) % p;
        let src = (rank + p - pof2) % p;
        let positions: Vec<usize> = (0..p).filter(|i| i & pof2 != 0).collect();
        let mut outgoing = Vec::with_capacity(positions.len() * block);
        for &i in &positions {
            outgoing.extend_from_slice(&tmp[i * block..(i + 1) * block]);
        }
        comm.charge_copy(outgoing.len());
        let incoming = comm.sendrecv(
            dst,
            tag + round,
            &outgoing,
            src,
            tag + round,
            outgoing.len(),
        );
        for (slot, &i) in positions.iter().enumerate() {
            tmp[i * block..(i + 1) * block]
                .copy_from_slice(&incoming[slot * block..(slot + 1) * block]);
        }
        comm.charge_copy(incoming.len());
        pof2 <<= 1;
        round += 1;
    }

    // Phase 3: inverse rotation and reversal.  After phase 2, position i
    // holds the block sent by rank (rank - i) mod p destined for us.
    for i in 0..p {
        let sender = (rank + p - i) % p;
        recvbuf[sender * block..(sender + 1) * block]
            .copy_from_slice(&tmp[i * block..(i + 1) * block]);
    }
    comm.charge_copy(p * block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run_allgather(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            allgather_bruck(&comm, &sendbuf, &mut recvbuf, 500);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected, "allgather mismatch at rank {rank}");
        }
    }

    fn run_alltoall(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let inputs: Vec<Vec<u8>> = (0..world)
            .map(|r| oracle::rank_payload(r, world * block))
            .collect();
        let expected = oracle::alltoall(&inputs, world);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), world * block);
            let mut recvbuf = vec![0u8; world * block];
            alltoall_bruck(&comm, &sendbuf, &mut recvbuf, 700);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected[rank], "alltoall mismatch at rank {rank}");
        }
    }

    #[test]
    fn allgather_power_of_two() {
        run_allgather(4, 2, 16);
    }

    #[test]
    fn allgather_non_power_of_two() {
        run_allgather(3, 2, 8);
    }

    #[test]
    fn allgather_prime_world() {
        run_allgather(7, 1, 8);
    }

    #[test]
    fn allgather_single_rank() {
        run_allgather(1, 1, 32);
    }

    #[test]
    fn allgather_two_ranks() {
        run_allgather(1, 2, 4);
    }

    #[test]
    fn allgather_wide_node() {
        run_allgather(2, 9, 4);
    }

    #[test]
    fn alltoall_power_of_two() {
        run_alltoall(4, 1, 4);
    }

    #[test]
    fn alltoall_non_power_of_two() {
        run_alltoall(3, 2, 2);
    }

    #[test]
    fn alltoall_prime_world() {
        run_alltoall(5, 1, 3);
    }

    #[test]
    fn alltoall_single_rank() {
        run_alltoall(1, 1, 6);
    }

    #[test]
    fn allgather_trace_rounds_are_logarithmic() {
        let world = 12;
        let topo = Topology::new(world, 1);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; 16];
            let mut recvbuf = vec![0u8; world * 16];
            allgather_bruck(comm, &sendbuf, &mut recvbuf, 1);
        });
        trace.validate().unwrap();
        // ceil(log2(12)) = 4 rounds, one send per rank per round.
        assert_eq!(trace.ranks[0].send_count(), 4);
        // Every rank ends up sending p-1 blocks in total.
        assert_eq!(trace.ranks[0].bytes_sent(), (world - 1) * 16);
    }

    #[test]
    fn allgather_trace_at_paper_scale_validates() {
        let topo = Topology::new(128, 18);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; 64];
            let mut recvbuf = vec![0u8; comm.world_size() * 64];
            allgather_bruck(comm, &sendbuf, &mut recvbuf, 1);
        });
        trace.validate().unwrap();
        // ceil(log2(2304)) = 12 rounds.
        assert_eq!(trace.ranks[0].send_count(), 12);
    }
}
