//! The paper's multi-object Bruck allgather (HPDC '23, §2, steps ①–⑥).
//!
//! 1. ① Intra-node gather: every process stores its `C_b`-byte block into
//!    the node leader's destination buffer `A_d` through the PiP shared
//!    address space.
//! 2. ②–④ Multi-object Bruck exchange over nodes with base `B_k = P + 1`:
//!    in each phase, local rank `R_l` pairs with the nodes at offset
//!    `(R_l + 1) · S_p`, sends the first `S_p` node-blocks of `A_d` straight
//!    out of the leader's buffer and receives `S_p` node-blocks straight into
//!    it at offset `(R_l + 1) · S_p` — so a node keeps `P` messages in
//!    flight per phase and needs only `log_{P+1} N` phases instead of
//!    `log_2 N`.
//! 3. ⑤ A remainder phase covers the node-blocks left over when `N` is not a
//!    power of `P + 1`.
//! 4. ⑥ Every process copies the gathered buffer out in absolute rank order
//!    (the "shift" plus intra-node broadcast of the paper, fused into two
//!    contiguous PiP reads per process).

use crate::comm::Comm;
use crate::multi_object::schedule::bruck_phases;

/// Multi-object allgather: every rank contributes `sendbuf` (`C_b` bytes);
/// `recvbuf` (world × `C_b` bytes) receives all contributions in rank order.
pub fn allgather_multi_object<C: Comm>(comm: &C, sendbuf: &[u8], recvbuf: &mut [u8], tag: u64) {
    let block = sendbuf.len();
    let p = comm.world_size();
    assert_eq!(recvbuf.len(), p * block, "recvbuf must hold world blocks");
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let node_block = ppn * block;
    let name = format!("mo_ag_{tag}");

    // Step ①: intra-node gather into the leader's buffer A_d, kept in
    // rotated node order (own node-block first).
    if comm.is_node_root() {
        comm.shared_alloc(&name, nodes * node_block);
    }
    comm.node_barrier();
    comm.shared_write(0, &name, local * block, sendbuf);
    comm.node_barrier();

    // Steps ②–⑤: multi-object Bruck exchange over nodes.
    let topo = comm.topology();
    for (phase, t) in bruck_phases(nodes, ppn, node, local)
        .into_iter()
        .enumerate()
    {
        if t.count > 0 {
            let dst = topo.rank_of(t.dst_node, local);
            let src = topo.rank_of(t.src_node, local);
            let bytes = t.count * node_block;
            let phase_tag = tag + phase as u64;
            comm.send_from_shared(0, &name, 0, bytes, dst, phase_tag);
            comm.recv_into_shared(0, &name, t.recv_offset * node_block, src, phase_tag, bytes);
        }
        // All local ranks synchronize between phases so that the next
        // phase's sends see the blocks this phase deposited.
        comm.node_barrier();
    }

    // Step ⑥: copy out in absolute rank order (two contiguous reads undo the
    // rotation).
    let split = (nodes - node) * node_block;
    let tail = comm.shared_read(0, &name, 0, split);
    recvbuf[node * node_block..].copy_from_slice(&tail);
    if node > 0 {
        let head = comm.shared_read(0, &name, split, node * node_block);
        recvbuf[..node * node_block].copy_from_slice(&head);
    }
    comm.node_barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            allgather_multi_object(&comm, &sendbuf, &mut recvbuf, 3100);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(
                buf, &expected,
                "multi-object allgather mismatch at rank {rank}"
            );
        }
    }

    #[test]
    fn two_nodes_three_ppn() {
        run(2, 3, 16);
    }

    #[test]
    fn nodes_not_power_of_base() {
        run(5, 2, 8);
    }

    #[test]
    fn exact_power_of_base() {
        // base = ppn + 1 = 3; nodes = 9 = 3^2: two full phases, no remainder.
        run(9, 2, 4);
    }

    #[test]
    fn single_node() {
        run(1, 4, 8);
    }

    #[test]
    fn single_rank_per_node() {
        // Degenerates to classic radix-2 Bruck over nodes.
        run(6, 1, 8);
    }

    #[test]
    fn many_nodes_wide_ppn() {
        run(7, 5, 4);
    }

    #[test]
    fn more_ppn_than_nodes() {
        run(3, 6, 4);
    }

    #[test]
    fn single_byte_blocks() {
        run(4, 3, 1);
    }

    #[test]
    fn trace_every_local_rank_sends_in_parallel() {
        let topo = Topology::new(12, 4);
        let block = 64;
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; block];
            let mut recvbuf = vec![0u8; comm.world_size() * block];
            allgather_multi_object(comm, &sendbuf, &mut recvbuf, 1);
        });
        trace.validate().unwrap();
        // With nodes=12, ppn=4 (base 5): one full phase (5 <= 12), then a
        // remainder phase.  In the full phase all 4 local ranks send; in the
        // remainder phase ranks with offset < 12 send.
        let node0_senders = (0..4).filter(|&r| trace.ranks[r].send_count() > 0).count();
        assert_eq!(node0_senders, 4, "all local ranks must drive the network");
        // The single-leader design would concentrate all sends on rank 0.
        assert!(trace.ranks[0].send_count() <= 2);
    }

    #[test]
    fn trace_paper_scale_has_two_phases() {
        let topo = Topology::new(128, 18);
        let block = 64;
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; block];
            let mut recvbuf = vec![0u8; comm.world_size() * block];
            allgather_multi_object(comm, &sendbuf, &mut recvbuf, 1);
        });
        trace.validate().unwrap();
        // base 19: full phase at span 1..19, remainder covers 19..128.
        // Every local rank sends at most twice (once per phase).
        for rank in 0..18 {
            assert!(trace.ranks[rank].send_count() <= 2);
        }
        // Compare against the classic Bruck (12 rounds for 2304 ranks): the
        // multi-object critical path per process is far shorter.
        assert!(trace.ranks[0].send_count() < 12);
    }
}
