//! The PiP-MColl multi-object collectives (Huang et al., HPDC '23, §2).
//!
//! The single-leader hierarchical design funnels every inter-node byte of a
//! node through one process, so a small-message collective is limited by that
//! process's message rate.  The multi-object design removes the funnel: all
//! `P` processes of a node act as independent sender/receiver *objects* that
//! read from and write into the node leader's buffers directly through the
//! PiP shared address space — no staging copies, no leader bottleneck — so a
//! node can keep `P` messages in flight at once and approach the adapter's
//! aggregate message rate.
//!
//! Per collective:
//!
//! * [`allgather`] — the paper's multi-object Bruck allgather with base
//!   `P + 1` (steps ①–⑥ of §2).
//! * [`scatter`] / [`bcast`] / [`gather`] — the root node's processes share
//!   the fan-out/fan-in: local rank `R_l` serves the remote nodes `n` with
//!   `n mod P == R_l`, sending straight out of (or receiving straight into)
//!   the root's buffer.
//! * [`allreduce`] — the reduction vector is split into `P` chunks; local
//!   rank `R_l` owns chunk `R_l`, reduces it across the node through shared
//!   memory and runs an inter-node recursive doubling restricted to the
//!   processes with the same local rank, giving `P` concurrent allreduces.
//!   Expressed as reduce_scatter (the chunk-ownership phase) followed by
//!   the intra-node allgather of the chunks.
//! * [`reduce_scatter`] — the chunk-ownership phase as a collective of its
//!   own: rank `r` extracts its reduced block from its node's chunk owners.
//! * [`reduce`] — the chunk-ownership phase followed by a node-local
//!   assembly at the root.
//! * [`alltoall`] — node-aware pairwise exchange where each local rank
//!   handles a disjoint subset of the partner nodes.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod bcast;
pub mod gather;
pub mod reduce;
pub mod reduce_scatter;
pub mod scatter;
pub mod schedule;

pub use allgather::allgather_multi_object;
pub use allreduce::allreduce_multi_object;
pub use alltoall::alltoall_multi_object;
pub use bcast::bcast_multi_object;
pub use gather::gather_multi_object;
pub use reduce::reduce_multi_object;
pub use reduce_scatter::reduce_scatter_multi_object;
pub use scatter::scatter_multi_object;
