//! Multi-object reduce: the chunk-ownership phase followed by a node-local
//! assembly at the root.
//!
//! The restricted inter-node exchange of
//! [`crate::multi_object::reduce_scatter::reduce_owned_chunk`] leaves every
//! node holding the complete globally reduced vector, spread across its `P`
//! local owners — so once the chunks are published, the root assembles its
//! receive buffer entirely through node-local shared-memory reads.  Every
//! local rank of every node drives the NIC during the exchange (the
//! multi-object property); no single process funnels the vector.

use crate::comm::{Comm, ReduceFn};
use crate::multi_object::reduce_scatter::{elem_chunk_bounds, reduce_owned_chunk};

/// Multi-object reduce for a commutative `op`: every rank contributes
/// `sendbuf`; the root's `recvbuf` receives the element-wise combination of
/// all contributions.
///
/// `recvbuf` must be `Some` at the root and is ignored elsewhere.
/// `elem_size` is the size of one reduction element in bytes.
pub fn reduce_multi_object<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: Option<&mut [u8]>,
    elem_size: usize,
    op: &ReduceFn<'_>,
    root: usize,
    tag: u64,
) {
    let ppn = comm.ppn();
    let local = comm.local_rank();
    let len = sendbuf.len();
    let out_name = format!("mo_rd_out_{tag}");

    let chunk = reduce_owned_chunk(comm, sendbuf, elem_size, op, "mo_rd", tag);

    // Publish the reduced chunk; the root's node now holds the whole vector
    // locally, so the root assembles it with at most `P` shared reads.
    comm.shared_publish(&out_name, &chunk.bytes);
    comm.node_barrier();
    if comm.rank() == root {
        let recvbuf = recvbuf.expect("root must supply recvbuf");
        assert_eq!(recvbuf.len(), len, "recvbuf must match the send buffer");
        for owner in 0..ppn {
            let (s, e) = elem_chunk_bounds(len, elem_size, ppn, owner);
            if s == e {
                continue;
            }
            if owner == local {
                recvbuf[s..e].copy_from_slice(&chunk.bytes);
            } else {
                let data = comm.shared_read(owner, &out_name, 0, e - s);
                recvbuf[s..e].copy_from_slice(&data);
            }
        }
    }
    comm.node_barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, root: usize, len: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::reduce(&contributions, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), len);
            let mut recvbuf = vec![0u8; len];
            let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
            reduce_multi_object(
                &comm,
                &sendbuf,
                recv,
                1,
                &oracle::wrapping_add_u8,
                root,
                4600,
            );
            recvbuf
        })
        .unwrap();
        assert_eq!(
            results[root], expected,
            "multi-object reduce mismatch at root {root} ({nodes}x{ppn})"
        );
    }

    #[test]
    fn two_nodes_root_zero() {
        run(2, 4, 0, 64);
    }

    #[test]
    fn odd_nodes_non_leader_root() {
        // The root is not a node leader and sits mid-world.
        run(3, 3, 4, 35);
    }

    #[test]
    fn prime_node_count_last_rank_root() {
        run(5, 2, 9, 16);
    }

    #[test]
    fn single_node() {
        run(1, 4, 2, 32);
    }

    #[test]
    fn single_rank_per_node() {
        run(4, 1, 3, 16);
    }

    #[test]
    fn vector_shorter_than_ppn() {
        run(2, 6, 1, 3);
    }

    #[test]
    fn single_rank_total() {
        run(1, 1, 0, 8);
    }

    #[test]
    fn max_operator_reaches_root_exactly_once_per_contribution() {
        let topo = Topology::new(3, 2);
        let world = topo.world_size();
        let len = 13;
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::reduce(&contributions, oracle::max_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), len);
            let mut recvbuf = vec![0u8; len];
            let recv = (comm.rank() == 5).then_some(recvbuf.as_mut_slice());
            reduce_multi_object(&comm, &sendbuf, recv, 1, &oracle::max_u8, 5, 4700);
            recvbuf
        })
        .unwrap();
        assert_eq!(results[5], expected);
    }

    #[test]
    fn typed_i32_sum_reaches_a_non_leader_root() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(3, 2);
        let world = topo.world_size();
        let root = 3;
        let contributions: Vec<Vec<i32>> = (0..world)
            .map(|r| (0..6).map(|i| (r as i32 - 2) * 100 + i).collect())
            .collect();
        let expected = oracle::allreduce_t(&contributions, ReduceOp::Sum);
        let inputs = &contributions;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = to_bytes(&inputs[comm.rank()]);
            let mut recvbuf = vec![0u8; sendbuf.len()];
            let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
            let kernel = ReduceKernel::of::<i32>(ReduceOp::Sum);
            reduce_multi_object(&comm, &sendbuf, recv, 4, kernel.as_fn(), root, 4750);
            from_bytes::<i32>(&recvbuf)
        })
        .unwrap();
        assert_eq!(results[root], expected);
    }

    #[test]
    fn trace_every_local_rank_talks_to_the_network() {
        let topo = Topology::new(8, 4);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; 4096];
            let mut recvbuf = vec![0u8; 4096];
            let recv = (comm.rank() == 0).then_some(recvbuf.as_mut_slice());
            reduce_multi_object(comm, &sendbuf, recv, 1, &oracle::wrapping_add_u8, 0, 1);
        });
        trace.validate().unwrap();
        // The multi-object property: every local rank of every node runs
        // the restricted inter-node exchange on its own chunk.
        for local in 0..4 {
            assert_eq!(trace.ranks[local].send_count(), 3);
            assert_eq!(trace.ranks[local].bytes_sent(), 3 * 1024);
        }
    }
}
