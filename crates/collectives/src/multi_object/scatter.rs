//! Multi-object scatter: the root node's processes split the fan-out among
//! themselves, each sending whole node-blocks straight out of the root's
//! send buffer (PiP zero-copy), and on every destination node one process
//! receives the node-block into shared memory from which every local process
//! copies its own block.

use crate::comm::Comm;
use crate::multi_object::schedule::responsible_nodes;

/// Multi-object scatter from global rank `root`.  `sendbuf` must be `Some`
/// at the root (one block per rank, absolute rank order); every rank's
/// `recvbuf` receives its block.
pub fn scatter_multi_object<C: Comm>(
    comm: &C,
    sendbuf: Option<&[u8]>,
    recvbuf: &mut [u8],
    root: usize,
    tag: u64,
) {
    let block = recvbuf.len();
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let rank = comm.rank();
    let node_block = ppn * block;
    let topo = comm.topology();
    let root_node = topo.node_of(root);
    let root_local = topo.local_rank_of(root);
    let src_name = format!("mo_sc_src_{tag}");
    let stage_name = format!("mo_sc_stage_{tag}");

    // The local rank that receives a given remote node's block (mirrors the
    // sender assignment so send and receive overheads spread evenly).
    let receiver_local_for = |n: usize| n % ppn;

    if node == root_node {
        // The root publishes its send buffer; under PiP its peers can read
        // it directly, so publication is free.
        if rank == root {
            let sendbuf = sendbuf.expect("root must supply a send buffer");
            assert_eq!(sendbuf.len(), comm.world_size() * block);
            comm.shared_publish(&src_name, sendbuf);
        }
        comm.node_barrier();

        // Every root-node process serves its share of the remote nodes,
        // sending each node's block straight out of the root's buffer.
        for n in responsible_nodes(nodes, ppn, local, root_node) {
            let dst = topo.rank_of(n, receiver_local_for(n));
            comm.send_from_shared(root_local, &src_name, n * node_block, node_block, dst, tag);
        }

        // Local delivery: each root-node process copies its own block out of
        // the root's buffer.
        let data = comm.shared_read(root_local, &src_name, rank * block, block);
        recvbuf.copy_from_slice(&data);
        comm.node_barrier();
    } else {
        // One process per remote node receives the node-block into shared
        // memory.
        let receiver_local = receiver_local_for(node);
        if local == receiver_local {
            comm.shared_alloc(&stage_name, node_block);
            let sender_local = node % ppn;
            let src = topo.rank_of(root_node, sender_local);
            comm.recv_into_shared(receiver_local, &stage_name, 0, src, tag, node_block);
        }
        comm.node_barrier();
        let data = comm.shared_read(receiver_local, &stage_name, local * block, block);
        recvbuf.copy_from_slice(&data);
        comm.node_barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, block: usize, root: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let sendbuf = oracle::rank_payload(root, world * block);
        let expected = oracle::scatter(&sendbuf, world);
        let sendbuf_ref = &sendbuf;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut recvbuf = vec![0u8; block];
            let send = (comm.rank() == root).then_some(sendbuf_ref.as_slice());
            scatter_multi_object(&comm, send, &mut recvbuf, root, 3300);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(
                buf, &expected[rank],
                "multi-object scatter mismatch at rank {rank}"
            );
        }
    }

    #[test]
    fn root_zero_small_cluster() {
        run(3, 3, 16, 0);
    }

    #[test]
    fn root_zero_power_of_two() {
        run(4, 2, 8, 0);
    }

    #[test]
    fn root_on_middle_node_non_leader() {
        run(3, 4, 8, 5);
    }

    #[test]
    fn single_node() {
        run(1, 6, 8, 2);
    }

    #[test]
    fn single_rank_per_node() {
        run(5, 1, 32, 0);
    }

    #[test]
    fn more_nodes_than_ppn() {
        run(9, 2, 4, 0);
    }

    #[test]
    fn more_ppn_than_nodes() {
        run(2, 7, 4, 1);
    }

    #[test]
    fn trace_fanout_is_shared_by_root_node_processes() {
        let nodes = 13;
        let ppn = 4;
        let block = 64;
        let topo = Topology::new(nodes, ppn);
        let sendbuf = vec![0u8; topo.world_size() * block];
        let trace = record_trace(topo, |comm| {
            let mut recvbuf = vec![0u8; block];
            let send = (comm.rank() == 0).then_some(sendbuf.as_slice());
            scatter_multi_object(comm, send, &mut recvbuf, 0, 1);
        });
        trace.validate().unwrap();
        // 12 remote nodes spread over 4 senders: every root-node process
        // sends 3 messages; a single-leader design would send 12 from rank 0.
        for local in 0..ppn {
            assert_eq!(trace.ranks[local].send_count(), 3);
        }
        // Non-root-node processes never send.
        for rank in ppn..topo.world_size() {
            assert_eq!(trace.ranks[rank].send_count(), 0);
        }
    }

    #[test]
    fn trace_receivers_are_spread_across_local_ranks() {
        let nodes = 6;
        let ppn = 3;
        let block = 16;
        let topo = Topology::new(nodes, ppn);
        let sendbuf = vec![0u8; topo.world_size() * block];
        let trace = record_trace(topo, |comm| {
            let mut recvbuf = vec![0u8; block];
            let send = (comm.rank() == 0).then_some(sendbuf.as_slice());
            scatter_multi_object(comm, send, &mut recvbuf, 0, 1);
        });
        trace.validate().unwrap();
        // Each remote node n receives exactly one network message, at local
        // rank n % ppn.
        for n in 1..nodes {
            for local in 0..ppn {
                let rank = topo.rank_of(n, local);
                let expected = usize::from(local == n % ppn);
                assert_eq!(trace.ranks[rank].recv_count(), expected);
            }
        }
    }
}
