//! Multi-object reduce_scatter — the chunk-ownership phase of the paper's
//! allreduce (§2), exposed as a collective of its own.
//!
//! The phase structure is exactly the first half of the multi-object
//! allreduce: the vector is split into `P` element-aligned chunks, local
//! rank `R_l` owns chunk `R_l`, reduces it across its node through the
//! shared address space, and joins an inter-node recursive-doubling
//! exchange restricted to the processes with the same local rank — `P`
//! concurrent inter-node reductions per node.  [`reduce_owned_chunk`] is
//! that phase, shared verbatim by [`reduce_scatter_multi_object`],
//! [`crate::multi_object::reduce_multi_object`] and
//! [`crate::multi_object::allreduce_multi_object`] (which is literally this
//! phase followed by the intra-node allgather of the chunks).
//!
//! For reduce_scatter proper (MPI_Reduce_scatter_block semantics: one block
//! per rank in, block `r` out at rank `r`), the reduced `P`-chunks —
//! replicated on every node by the restricted exchange — are published
//! node-locally and each rank extracts its own block from the chunks of its
//! node's owners, paying at most two shared-memory reads.

use crate::comm::{Comm, ReduceFn};
use crate::multi_object::schedule::chunk_bounds;
use crate::recursive_doubling::largest_pow2_leq;

/// The globally reduced chunk owned by this rank after the chunk-ownership
/// phase: byte range `start..end` of the full vector, already combined
/// across every rank of the world.
#[derive(Debug, Clone)]
pub struct OwnedChunk {
    /// Start of the chunk within the full vector, in bytes.
    pub start: usize,
    /// End of the chunk within the full vector, in bytes.
    pub end: usize,
    /// The reduced bytes (`end - start` of them).
    pub bytes: Vec<u8>,
}

/// Byte bounds of local rank `index`'s chunk of a vector of `len` bytes
/// holding `len / elem_size` whole elements, split across `ppn` owners.
pub(crate) fn elem_chunk_bounds(
    len: usize,
    elem_size: usize,
    ppn: usize,
    index: usize,
) -> (usize, usize) {
    let elements = len / elem_size;
    let (s, e) = chunk_bounds(elements, ppn, index);
    (s * elem_size, e * elem_size)
}

/// The chunk-ownership reduce phase (paper §2): publish the contribution,
/// reduce the owned chunk across the node through shared memory, then run
/// the restricted inter-node recursive doubling.  Returns the globally
/// reduced chunk this rank owns.
///
/// `prefix` namespaces the shared input region (`{prefix}_in_{tag}`) so
/// each caller keeps its legacy region names.
pub fn reduce_owned_chunk<C: Comm>(
    comm: &C,
    buf: &[u8],
    elem_size: usize,
    op: &ReduceFn<'_>,
    prefix: &str,
    tag: u64,
) -> OwnedChunk {
    let len = buf.len();
    assert!(elem_size > 0, "element size must be positive");
    assert_eq!(len % elem_size, 0, "buffer must hold whole elements");
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let topo = comm.topology();
    let in_name = format!("{prefix}_in_{tag}");

    // Every process publishes its contribution (free under PiP).
    comm.shared_publish(&in_name, buf);
    comm.node_barrier();

    // Intra-node reduction of this process's chunk across all local peers.
    let (start, end) = elem_chunk_bounds(len, elem_size, ppn, local);
    let mut chunk = buf[start..end].to_vec();
    for peer in 0..ppn {
        if peer == local || chunk.is_empty() {
            continue;
        }
        let contribution = comm.shared_read(peer, &in_name, start, end - start);
        op(&mut chunk, &contribution);
        comm.charge_reduce(end - start);
    }

    // Inter-node recursive doubling among the processes with the same local
    // rank (one independent allreduce per chunk).
    if nodes > 1 && !chunk.is_empty() {
        let peer_rank = |n: usize| topo.rank_of(n, local);
        let pof2 = largest_pow2_leq(nodes);
        let rem = nodes - pof2;
        let bytes = chunk.len();
        let newnode: isize = if node < 2 * rem {
            if node.is_multiple_of(2) {
                comm.send(peer_rank(node + 1), tag, &chunk);
                -1
            } else {
                let data = comm.recv(peer_rank(node - 1), tag, bytes);
                op(&mut chunk, &data);
                comm.charge_reduce(bytes);
                (node / 2) as isize
            }
        } else {
            (node - rem) as isize
        };
        if newnode >= 0 {
            let newnode = newnode as usize;
            let to_node = |nn: usize| if nn < rem { nn * 2 + 1 } else { nn + rem };
            let mut mask = 1usize;
            let mut round = 1u64;
            while mask < pof2 {
                let partner = peer_rank(to_node(newnode ^ mask));
                let received =
                    comm.sendrecv(partner, tag + round, &chunk, partner, tag + round, bytes);
                op(&mut chunk, &received);
                comm.charge_reduce(bytes);
                mask <<= 1;
                round += 1;
            }
        }
        if node < 2 * rem {
            if node.is_multiple_of(2) {
                let data = comm.recv(peer_rank(node + 1), tag + 63, bytes);
                chunk.copy_from_slice(&data);
            } else {
                comm.send(peer_rank(node - 1), tag + 63, &chunk);
            }
        }
    }

    OwnedChunk {
        start,
        end,
        bytes: chunk,
    }
}

/// Multi-object reduce_scatter for a commutative `op`: `sendbuf` holds one
/// block per rank (`world * recvbuf.len()` bytes); `recvbuf` receives this
/// rank's fully reduced block.
///
/// `elem_size` is the size of one reduction element in bytes; the block
/// size must be a multiple of it so the chunk partition and the block
/// boundaries both fall on whole elements.
pub fn reduce_scatter_multi_object<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    elem_size: usize,
    op: &ReduceFn<'_>,
    tag: u64,
) {
    let world = comm.world_size();
    let block = recvbuf.len();
    assert_eq!(
        sendbuf.len(),
        world * block,
        "sendbuf must hold one block per rank"
    );
    assert_eq!(block % elem_size, 0, "block must hold whole elements");
    let ppn = comm.ppn();
    let local = comm.local_rank();
    let rank = comm.rank();
    let len = sendbuf.len();
    let out_name = format!("mo_rs_out_{tag}");

    let chunk = reduce_owned_chunk(comm, sendbuf, elem_size, op, "mo_rs", tag);

    // Publish the globally reduced chunk; every node now holds the whole
    // reduced vector across its local owners, so each rank extracts its own
    // block from at most a couple of node-local chunks.
    comm.shared_publish(&out_name, &chunk.bytes);
    comm.node_barrier();
    let (block_start, block_end) = (rank * block, (rank + 1) * block);
    for owner in 0..ppn {
        let (s, e) = elem_chunk_bounds(len, elem_size, ppn, owner);
        let lo = s.max(block_start);
        let hi = e.min(block_end);
        if lo >= hi {
            continue;
        }
        let dst = &mut recvbuf[lo - block_start..hi - block_start];
        if owner == local {
            dst.copy_from_slice(&chunk.bytes[lo - s..hi - s]);
        } else {
            let data = comm.shared_read(owner, &out_name, lo - s, hi - lo);
            dst.copy_from_slice(&data);
        }
    }
    comm.node_barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> = (0..world)
            .map(|r| oracle::rank_payload(r, world * block))
            .collect();
        let expected = oracle::reduce_scatter(&contributions, world, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), world * block);
            let mut recvbuf = vec![0u8; block];
            reduce_scatter_multi_object(
                &comm,
                &sendbuf,
                &mut recvbuf,
                1,
                &oracle::wrapping_add_u8,
                4300,
            );
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(
                buf, &expected[rank],
                "multi-object reduce_scatter mismatch at rank {rank} ({nodes}x{ppn})"
            );
        }
    }

    #[test]
    fn two_nodes_even_chunks() {
        run(2, 4, 8);
    }

    #[test]
    fn odd_nodes_blocks_straddle_chunk_boundaries() {
        // 9 ranks x 5-byte blocks: the ppn-chunk partition of the 45-byte
        // vector does not align with block boundaries, so extraction spans
        // two owners.
        run(3, 3, 5);
    }

    #[test]
    fn prime_node_count() {
        run(5, 2, 4);
    }

    #[test]
    fn single_node() {
        run(1, 4, 8);
    }

    #[test]
    fn single_rank_per_node() {
        run(4, 1, 8);
    }

    #[test]
    fn single_rank_total() {
        run(1, 1, 8);
    }

    #[test]
    fn blocks_smaller_than_ppn_leave_empty_chunks() {
        // 12 ranks, 1-byte blocks: the 12-byte vector split across 6 local
        // owners leaves several 2-byte chunks; extraction still lands every
        // block.
        run(2, 6, 1);
    }

    #[test]
    fn f64_sum_reduction_stays_element_aligned() {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let elements_per_block = 2;
        let block = elements_per_block * 8;
        let expected: Vec<f64> = (0..world * elements_per_block)
            .map(|i| (0..world).map(|r| (r * 100 + i) as f64).sum())
            .collect();
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut sendbuf = Vec::new();
            for i in 0..world * elements_per_block {
                sendbuf.extend_from_slice(&((comm.rank() * 100 + i) as f64).to_le_bytes());
            }
            let mut recvbuf = vec![0u8; block];
            reduce_scatter_multi_object(&comm, &sendbuf, &mut recvbuf, 8, &oracle::sum_f64, 4400);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            let values: Vec<f64> = buf
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for (i, value) in values.iter().enumerate() {
                let want = expected[rank * elements_per_block + i];
                assert!((value - want).abs() < 1e-9, "rank {rank} element {i}");
            }
        }
    }

    #[test]
    fn typed_u64_max_matches_the_typed_oracle_across_chunk_boundaries() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        // 9 ranks x 3-element blocks: the ppn-chunk partition does not align
        // with block boundaries, so typed extraction spans owners.
        let topo = Topology::new(3, 3);
        let world = topo.world_size();
        let elements_per_block = 3;
        let contributions: Vec<Vec<u64>> = (0..world)
            .map(|r| {
                (0..world * elements_per_block)
                    .map(|i| ((r * 31 + i * 7) % 97) as u64)
                    .collect()
            })
            .collect();
        let expected = oracle::reduce_scatter_t(&contributions, world, ReduceOp::Max);
        let inputs = &contributions;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = to_bytes(&inputs[comm.rank()]);
            let mut recvbuf = vec![0u8; elements_per_block * 8];
            let kernel = ReduceKernel::of::<u64>(ReduceOp::Max);
            reduce_scatter_multi_object(&comm, &sendbuf, &mut recvbuf, 8, kernel.as_fn(), 4450);
            from_bytes::<u64>(&recvbuf)
        })
        .unwrap();
        for (rank, out) in results.iter().enumerate() {
            assert_eq!(out, &expected[rank], "typed reduce_scatter at rank {rank}");
        }
    }

    #[test]
    fn trace_every_local_rank_talks_to_the_network() {
        let topo = Topology::new(8, 4);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; 4096];
            let mut recvbuf = vec![0u8; 4096 / 32];
            reduce_scatter_multi_object(
                comm,
                &sendbuf,
                &mut recvbuf,
                1,
                &oracle::wrapping_add_u8,
                1,
            );
        });
        trace.validate().unwrap();
        // Every local rank of node 0 runs the 3 restricted recursive-
        // doubling rounds on its own quarter of the vector.
        for local in 0..4 {
            assert_eq!(trace.ranks[local].send_count(), 3);
            assert_eq!(trace.ranks[local].bytes_sent(), 3 * 1024);
        }
    }
}
