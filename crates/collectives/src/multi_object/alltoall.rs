//! Multi-object alltoall: a node-aware pairwise exchange in which each local
//! rank handles a disjoint subset of the partner nodes, shipping whole
//! `P × P`-block tiles assembled in (and delivered through) the shared
//! address space.
//!
//! For every pair of nodes `(A, B)` exactly one tile of `P·P` blocks flows in
//! each direction, so the inter-node message count per node drops from
//! `P·(W - P)` (flat pairwise) to `N - 1`, while the `P` local ranks share
//! those `N - 1` messages — the same multi-object principle as the other
//! collectives.

use crate::comm::Comm;

/// Multi-object alltoall: `sendbuf` holds one block per destination rank;
/// `recvbuf` receives one block from every source rank (both world × block
/// bytes).
pub fn alltoall_multi_object<C: Comm>(comm: &C, sendbuf: &[u8], recvbuf: &mut [u8], tag: u64) {
    let p = comm.world_size();
    assert_eq!(sendbuf.len(), recvbuf.len());
    assert_eq!(sendbuf.len() % p, 0);
    let block = sendbuf.len() / p;
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let topo = comm.topology();
    let node_tile = ppn * ppn * block; // data one node sends to one node
    let in_name = format!("mo_a2a_in_{tag}");
    let out_name = format!("mo_a2a_out_{tag}");

    // Publish the send buffer (free under PiP) and expose a landing zone for
    // the tiles addressed to this process's node that this process is
    // responsible for receiving.
    comm.shared_publish(&in_name, sendbuf);
    comm.shared_alloc(&out_name, nodes * ppn * block);
    comm.node_barrier();

    // Intra-node delivery: blocks destined for processes of this node are
    // copied directly between the published buffers.
    for peer_local in 0..ppn {
        let peer_rank = topo.rank_of(node, peer_local);
        if peer_local == local {
            recvbuf[peer_rank * block..(peer_rank + 1) * block]
                .copy_from_slice(&sendbuf[peer_rank * block..(peer_rank + 1) * block]);
        } else {
            // Read the block peer -> me straight from the peer's buffer.
            let data = comm.shared_read(peer_local, &in_name, comm.rank() * block, block);
            recvbuf[peer_rank * block..(peer_rank + 1) * block].copy_from_slice(&data);
        }
    }

    // Inter-node exchange: the node pair (A, B) is handled by local rank
    // (A + B) % ppn on both sides, which spreads the N-1 tiles evenly over
    // the local ranks and keeps the pairing symmetric.  The handler
    // assembles the outgoing tile (every local process's blocks for that
    // node) by reading its peers' published buffers, sends it, and scatters
    // the symmetric incoming tile to its peers' landing zones.
    let handler_of = |a: usize, b: usize| (a + b) % ppn;
    for remote in (0..nodes).filter(|&d| d != node && handler_of(node, d) == local) {
        let mut tile = Vec::with_capacity(node_tile);
        for src_local in 0..ppn {
            let range_start = topo.rank_of(remote, 0) * block;
            let range_len = ppn * block;
            if src_local == local {
                tile.extend_from_slice(&sendbuf[range_start..range_start + range_len]);
            } else {
                let data = comm.shared_read(src_local, &in_name, range_start, range_len);
                tile.extend_from_slice(&data);
            }
        }
        let partner = topo.rank_of(remote, local);
        let incoming = comm.sendrecv(partner, tag, &tile, partner, tag, node_tile);
        // The incoming tile is ordered by sending local rank, then by
        // destination local rank; deliver each piece to its destination's
        // landing zone (or straight into our own recvbuf).
        for (src_local, chunk) in incoming.chunks(ppn * block).enumerate() {
            for dst_local in 0..ppn {
                let piece = &chunk[dst_local * block..(dst_local + 1) * block];
                if dst_local == local {
                    let src_rank = topo.rank_of(remote, src_local);
                    recvbuf[src_rank * block..(src_rank + 1) * block].copy_from_slice(piece);
                } else {
                    // Deliver straight into the destination peer's landing
                    // zone through shared memory.
                    let offset = (remote * ppn + src_local) * block;
                    comm.shared_write(dst_local, &out_name, offset, piece);
                }
            }
        }
    }
    comm.node_barrier();

    // Collect the blocks peers deposited for us (sources on nodes whose tile
    // was handled by another local rank).  The landing zone is our own
    // buffer, so collecting it is free under PiP.
    let landing = comm.shared_collect(&out_name, nodes * ppn * block);
    for remote in (0..nodes).filter(|&d| d != node && handler_of(node, d) != local) {
        for src_local in 0..ppn {
            let src_rank = topo.rank_of(remote, src_local);
            let offset = (remote * ppn + src_local) * block;
            recvbuf[src_rank * block..(src_rank + 1) * block]
                .copy_from_slice(&landing[offset..offset + block]);
        }
    }
    comm.node_barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ThreadComm;
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let inputs: Vec<Vec<u8>> = (0..world)
            .map(|r| oracle::rank_payload(r, world * block))
            .collect();
        let expected = oracle::alltoall(&inputs, world);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), world * block);
            let mut recvbuf = vec![0u8; world * block];
            alltoall_multi_object(&comm, &sendbuf, &mut recvbuf, 4300);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(
                buf, &expected[rank],
                "multi-object alltoall mismatch at rank {rank}"
            );
        }
    }

    #[test]
    fn two_nodes() {
        run(2, 3, 4);
    }

    #[test]
    fn odd_nodes() {
        run(3, 2, 8);
    }

    #[test]
    fn single_node() {
        run(1, 4, 4);
    }

    #[test]
    fn single_rank_per_node() {
        run(4, 1, 4);
    }

    #[test]
    fn ppn_exceeds_nodes() {
        run(2, 5, 2);
    }
}
