//! Multi-object allreduce: the reduction vector is split into `P` chunks;
//! local rank `R_l` owns chunk `R_l`, reduces it across its node through the
//! shared address space, then joins an inter-node recursive-doubling
//! allreduce restricted to the processes with the same local rank.  The node
//! therefore runs `P` concurrent inter-node reductions (one per chunk)
//! instead of funnelling the whole vector through its leader.
//!
//! Structurally the algorithm is **reduce_scatter followed by allgather**:
//! the chunk-ownership reduce phase
//! ([`crate::multi_object::reduce_scatter::reduce_owned_chunk`], shared
//! verbatim with the standalone multi-object reduce_scatter and reduce) and
//! then the intra-node allgather of the reduced chunks through the shared
//! address space.  The decomposition preserves the pre-refactor schedule
//! op-for-op — pinned by `monolithic_and_decomposed_schedules_agree` below.

use crate::comm::{Comm, ReduceFn};
use crate::multi_object::reduce_scatter::{elem_chunk_bounds, reduce_owned_chunk};

/// Multi-object allreduce for a commutative `op`; `buf` holds this rank's
/// contribution on entry and the fully reduced vector on return.
///
/// `elem_size` is the size of one reduction element in bytes; the per-chunk
/// partition is aligned to it so `op` always sees whole elements.
pub fn allreduce_multi_object<C: Comm>(
    comm: &C,
    buf: &mut [u8],
    elem_size: usize,
    op: &ReduceFn<'_>,
    tag: u64,
) {
    let len = buf.len();
    let ppn = comm.ppn();
    let local = comm.local_rank();
    let out_name = format!("mo_ar_out_{tag}");

    // Phase 1 — reduce_scatter: the chunk-ownership reduce (intra-node
    // reduction of the owned chunk plus the restricted inter-node exchange).
    let chunk = reduce_owned_chunk(comm, buf, elem_size, op, "mo_ar", tag);

    // Phase 2 — allgather: publish the globally reduced chunk and assemble
    // the full vector from the node's local owners.
    comm.shared_publish(&out_name, &chunk.bytes);
    comm.node_barrier();
    for owner in 0..ppn {
        let (s, e) = elem_chunk_bounds(len, elem_size, ppn, owner);
        if s == e {
            continue;
        }
        if owner == local {
            buf[s..e].copy_from_slice(&chunk.bytes);
        } else {
            let data = comm.shared_read(owner, &out_name, 0, e - s);
            buf[s..e].copy_from_slice(&data);
        }
    }
    comm.node_barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::multi_object::schedule::chunk_bounds;
    use crate::oracle;
    use crate::recursive_doubling::largest_pow2_leq;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, len: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = oracle::rank_payload(comm.rank(), len);
            allreduce_multi_object(&comm, &mut buf, 1, &oracle::wrapping_add_u8, 3900);
            buf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(
                buf, &expected,
                "multi-object allreduce mismatch at rank {rank}"
            );
        }
    }

    #[test]
    fn two_nodes_even_chunks() {
        run(2, 4, 64);
    }

    #[test]
    fn odd_nodes_uneven_chunks() {
        run(3, 3, 35);
    }

    #[test]
    fn prime_node_count() {
        run(5, 2, 16);
    }

    #[test]
    fn single_node() {
        run(1, 4, 32);
    }

    #[test]
    fn single_rank_per_node() {
        run(4, 1, 16);
    }

    #[test]
    fn vector_shorter_than_ppn() {
        // Some chunks are empty.
        run(2, 6, 3);
    }

    #[test]
    fn single_rank_total() {
        run(1, 1, 8);
    }

    #[test]
    fn f64_sum_reduction() {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let elements = 4;
        let expected: Vec<f64> = (0..elements)
            .map(|i| (0..world).map(|r| (r * 10 + i) as f64).sum())
            .collect();
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = Vec::new();
            for i in 0..elements {
                buf.extend_from_slice(&((comm.rank() * 10 + i) as f64).to_le_bytes());
            }
            allreduce_multi_object(&comm, &mut buf, 8, &oracle::sum_f64, 4100);
            buf
        })
        .unwrap();
        for buf in results {
            let values: Vec<f64> = buf
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for (value, want) in values.iter().zip(&expected) {
                assert!((value - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn typed_f32_max_multi_object_propagates_nan_everywhere() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(2, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            // One NaN lane (from rank 3), one clean lane per chunk of the
            // multi-object split.
            let input: Vec<f32> = (0..8)
                .map(|i| {
                    if comm.rank() == 3 && i % 4 == 1 {
                        f32::NAN
                    } else {
                        (comm.rank() * 8 + i) as f32
                    }
                })
                .collect();
            let mut buf = to_bytes(&input);
            let kernel = ReduceKernel::of::<f32>(ReduceOp::Max);
            allreduce_multi_object(&comm, &mut buf, 4, kernel.as_fn(), 4150);
            from_bytes::<f32>(&buf)
        })
        .unwrap();
        for (rank, out) in results.iter().enumerate() {
            for (i, value) in out.iter().enumerate() {
                if i % 4 == 1 {
                    assert!(value.is_nan(), "rank {rank} elem {i}: NaN lane lost");
                } else {
                    assert_eq!(*value, (24 + i) as f32, "rank {rank} elem {i}");
                }
            }
        }
    }

    #[test]
    fn trace_every_local_rank_talks_to_the_network() {
        let topo = Topology::new(8, 4);
        let trace = record_trace(topo, |comm| {
            let mut buf = vec![0u8; 4096];
            allreduce_multi_object(comm, &mut buf, 1, &oracle::wrapping_add_u8, 1);
        });
        trace.validate().unwrap();
        // Every local rank of node 0 sends in the inter-node phase (8 nodes
        // = 3 recursive-doubling rounds on its own chunk).
        for local in 0..4 {
            assert_eq!(trace.ranks[local].send_count(), 3);
            // Each round carries one quarter of the vector.
            assert_eq!(trace.ranks[local].bytes_sent(), 3 * 1024);
        }
    }

    /// A verbatim copy of the pre-refactor monolithic multi-object allreduce
    /// — the schedule the decomposed reduce_scatter + allgather form must
    /// reproduce op for op.
    fn allreduce_multi_object_monolithic<C: Comm>(
        comm: &C,
        buf: &mut [u8],
        elem_size: usize,
        op: &ReduceFn<'_>,
        tag: u64,
    ) {
        let len = buf.len();
        assert!(elem_size > 0, "element size must be positive");
        assert_eq!(len % elem_size, 0, "buffer must hold whole elements");
        let ppn = comm.ppn();
        let nodes = comm.num_nodes();
        let node = comm.node_id();
        let local = comm.local_rank();
        let topo = comm.topology();
        let in_name = format!("mo_ar_in_{tag}");
        let out_name = format!("mo_ar_out_{tag}");

        comm.shared_publish(&in_name, buf);
        comm.node_barrier();

        let elements = len / elem_size;
        let elem_chunk = |index: usize| {
            let (s, e) = chunk_bounds(elements, ppn, index);
            (s * elem_size, e * elem_size)
        };
        let (start, end) = elem_chunk(local);
        let mut chunk = buf[start..end].to_vec();
        for peer in 0..ppn {
            if peer == local || chunk.is_empty() {
                continue;
            }
            let contribution = comm.shared_read(peer, &in_name, start, end - start);
            op(&mut chunk, &contribution);
            comm.charge_reduce(end - start);
        }

        if nodes > 1 && !chunk.is_empty() {
            let peer_rank = |n: usize| topo.rank_of(n, local);
            let pof2 = largest_pow2_leq(nodes);
            let rem = nodes - pof2;
            let bytes = chunk.len();
            let newnode: isize = if node < 2 * rem {
                if node.is_multiple_of(2) {
                    comm.send(peer_rank(node + 1), tag, &chunk);
                    -1
                } else {
                    let data = comm.recv(peer_rank(node - 1), tag, bytes);
                    op(&mut chunk, &data);
                    comm.charge_reduce(bytes);
                    (node / 2) as isize
                }
            } else {
                (node - rem) as isize
            };
            if newnode >= 0 {
                let newnode = newnode as usize;
                let to_node = |nn: usize| if nn < rem { nn * 2 + 1 } else { nn + rem };
                let mut mask = 1usize;
                let mut round = 1u64;
                while mask < pof2 {
                    let partner = peer_rank(to_node(newnode ^ mask));
                    let received =
                        comm.sendrecv(partner, tag + round, &chunk, partner, tag + round, bytes);
                    op(&mut chunk, &received);
                    comm.charge_reduce(bytes);
                    mask <<= 1;
                    round += 1;
                }
            }
            if node < 2 * rem {
                if node.is_multiple_of(2) {
                    let data = comm.recv(peer_rank(node + 1), tag + 63, bytes);
                    chunk.copy_from_slice(&data);
                } else {
                    comm.send(peer_rank(node - 1), tag + 63, &chunk);
                }
            }
        }

        comm.shared_publish(&out_name, &chunk);
        comm.node_barrier();
        for owner in 0..ppn {
            let (s, e) = elem_chunk(owner);
            if s == e {
                continue;
            }
            if owner == local {
                buf[s..e].copy_from_slice(&chunk);
            } else {
                let data = comm.shared_read(owner, &out_name, 0, e - s);
                buf[s..e].copy_from_slice(&data);
            }
        }
        comm.node_barrier();
    }

    /// The decomposition pin: the reduce_scatter + allgather form records
    /// exactly the schedule of the pre-refactor monolith, op for op, on a
    /// topology grid including non-power-of-two node counts and empty
    /// chunks.
    #[test]
    fn monolithic_and_decomposed_schedules_agree() {
        for (nodes, ppn, len) in [
            (1, 1, 8),
            (1, 4, 32),
            (2, 4, 64),
            (3, 3, 35),
            (5, 2, 16),
            (2, 6, 3),
            (8, 4, 4096),
        ] {
            let topo = Topology::new(nodes, ppn);
            let decomposed = record_trace(topo, |comm| {
                let mut buf = vec![0u8; len];
                allreduce_multi_object(comm, &mut buf, 1, &oracle::wrapping_add_u8, 77);
            });
            let monolithic = record_trace(topo, |comm| {
                let mut buf = vec![0u8; len];
                allreduce_multi_object_monolithic(comm, &mut buf, 1, &oracle::wrapping_add_u8, 77);
            });
            assert_eq!(
                decomposed, monolithic,
                "decomposed allreduce schedule diverges on {nodes}x{ppn} len {len}"
            );
        }
    }
}
