//! Multi-object gather: each node assembles its node-block in shared memory,
//! one process per node sends it, and the root node's processes share the
//! receive work by depositing remote node-blocks straight into the root's
//! (exposed) receive buffer.

use crate::comm::Comm;
use crate::multi_object::schedule::responsible_nodes;

/// Multi-object gather to global rank `root`: every rank contributes
/// `sendbuf`; the root's `recvbuf` (world × block bytes) receives all blocks
/// in rank order.
pub fn gather_multi_object<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: Option<&mut [u8]>,
    root: usize,
    tag: u64,
) {
    let block = sendbuf.len();
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let rank = comm.rank();
    let node_block = ppn * block;
    let topo = comm.topology();
    let root_node = topo.node_of(root);
    let root_local = topo.local_rank_of(root);
    let dst_name = format!("mo_ga_dst_{tag}");
    let stage_name = format!("mo_ga_stage_{tag}");

    // The local rank on a remote node that sends its node-block, and the
    // matching local rank on the root node that receives it.
    let courier_local_for = |n: usize| n % ppn;

    if node == root_node {
        // The root's receive buffer is exposed so that its node peers can
        // deposit remote node-blocks and local contributions directly.
        if rank == root {
            assert_eq!(
                recvbuf.as_deref().map(<[u8]>::len),
                Some(comm.world_size() * block),
                "root recvbuf must hold one block per rank"
            );
            comm.shared_alloc(&dst_name, comm.world_size() * block);
        }
        comm.node_barrier();

        // Intra-node: every root-node process deposits its own block.
        comm.shared_write(root_local, &dst_name, rank * block, sendbuf);

        // Inter-node: this process receives the node-blocks of the remote
        // nodes it is responsible for, straight into the root's buffer.
        for n in responsible_nodes(nodes, ppn, local, root_node) {
            let src = topo.rank_of(n, courier_local_for(n));
            comm.recv_into_shared(root_local, &dst_name, n * node_block, src, tag, node_block);
        }
        comm.node_barrier();

        if rank == root {
            let gathered = comm.shared_collect(&dst_name, comm.world_size() * block);
            recvbuf.expect("root recvbuf").copy_from_slice(&gathered);
        }
    } else {
        // Remote node: gather the node-block into the courier's staging
        // buffer, then the courier ships it to the root node.
        let courier = courier_local_for(node);
        if local == courier {
            comm.shared_alloc(&stage_name, node_block);
        }
        comm.node_barrier();
        comm.shared_write(courier, &stage_name, local * block, sendbuf);
        comm.node_barrier();
        if local == courier {
            let dst = topo.rank_of(root_node, courier);
            comm.send_from_shared(courier, &stage_name, 0, node_block, dst, tag);
        }
        comm.node_barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, block: usize, root: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::gather(&contributions);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
            gather_multi_object(&comm, &sendbuf, recv, root, 3700);
            recvbuf
        })
        .unwrap();
        assert_eq!(
            results[root], expected,
            "multi-object gather mismatch at root"
        );
    }

    #[test]
    fn root_zero() {
        run(4, 3, 8, 0);
    }

    #[test]
    fn root_not_a_leader() {
        run(3, 2, 16, 3);
    }

    #[test]
    fn single_node() {
        run(1, 4, 8, 1);
    }

    #[test]
    fn single_rank_per_node() {
        run(5, 1, 8, 0);
    }

    #[test]
    fn more_nodes_than_ppn() {
        run(7, 2, 4, 0);
    }

    #[test]
    fn trace_receives_are_spread_across_root_node() {
        let nodes = 9;
        let ppn = 4;
        let block = 32;
        let topo = Topology::new(nodes, ppn);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; block];
            let mut recvbuf = vec![0u8; comm.world_size() * block];
            let recv = (comm.rank() == 0).then_some(recvbuf.as_mut_slice());
            gather_multi_object(comm, &sendbuf, recv, 0, 1);
        });
        trace.validate().unwrap();
        // 8 remote nodes over 4 root-node receivers: two network receives
        // each; a single-leader gather would put all 8 on rank 0.
        for local in 0..ppn {
            assert_eq!(trace.ranks[local].recv_count(), 2);
        }
    }
}
