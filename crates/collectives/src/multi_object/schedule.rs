//! Index arithmetic shared by the multi-object algorithms: node pairing for
//! the base-(P+1) Bruck exchange, remainder handling, responsibility
//! assignment of remote nodes to local ranks, and chunk partitioning.
//!
//! Keeping this logic in pure functions makes the paper's formulas (§2,
//! steps ③–⑤) directly testable without running any communication.

/// One inter-node transfer of the multi-object Bruck exchange: local rank
/// `local` on node `node` pairs with `src_node` / `dst_node` and moves
/// `count` node-blocks into offset `recv_offset` (in node-blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruckTransfer {
    /// Node offset handled by this local rank: `(R_l + 1) * S_p`.
    pub offset: usize,
    /// Node this rank receives from: `(N_id + offset) mod N`.
    pub src_node: usize,
    /// Node this rank sends to: `(N_id - offset) mod N`.
    pub dst_node: usize,
    /// Number of node-blocks exchanged.
    pub count: usize,
    /// Destination offset of the received blocks, in node-blocks.
    pub recv_offset: usize,
}

/// The phases of the multi-object Bruck exchange for one local rank.
///
/// `nodes` is the paper's `N`, `ppn` its `P`; `node` / `local` identify the
/// process.  Phases are returned in execution order; a node barrier must
/// separate consecutive phases (all local ranks of a node produce the same
/// number of phases, possibly with `count == 0` transfers).
pub fn bruck_phases(nodes: usize, ppn: usize, node: usize, local: usize) -> Vec<BruckTransfer> {
    assert!(local < ppn);
    assert!(node < nodes);
    let base = ppn + 1;
    let mut phases = Vec::new();
    let mut span = 1usize; // the paper's S_p: node-blocks already gathered
                           // Full phases: each multiplies the gathered span by `base`.
    while span.saturating_mul(base) <= nodes {
        let offset = (local + 1) * span;
        phases.push(transfer(nodes, node, offset, span, offset));
        span *= base;
    }
    // Remainder phase (paper step ⑤): cover the leftover `nodes - span`
    // node-blocks; local rank `R_l` is responsible for the slice starting at
    // `(R_l + 1) * span`.
    if span < nodes {
        let offset = (local + 1) * span;
        let count = if offset < nodes {
            span.min(nodes - offset)
        } else {
            0
        };
        phases.push(transfer(nodes, node, offset, count, offset));
    }
    phases
}

fn transfer(
    nodes: usize,
    node: usize,
    offset: usize,
    count: usize,
    recv_offset: usize,
) -> BruckTransfer {
    BruckTransfer {
        offset,
        src_node: (node + offset) % nodes,
        dst_node: (node + nodes - (offset % nodes.max(1)) % nodes) % nodes,
        count,
        recv_offset,
    }
}

/// Number of phases (full + remainder) of the base-(P+1) Bruck exchange —
/// identical for every rank, which the barrier structure relies on.
pub fn bruck_phase_count(nodes: usize, ppn: usize) -> usize {
    let base = ppn + 1;
    let mut span = 1usize;
    let mut phases = 0usize;
    while span.saturating_mul(base) <= nodes {
        span *= base;
        phases += 1;
    }
    if span < nodes {
        phases += 1;
    }
    phases
}

/// The remote nodes local rank `local` is responsible for in the flat
/// fan-out/fan-in collectives (scatter, bcast, gather): every node `n`
/// except `skip_node` with `n mod ppn == local`.
pub fn responsible_nodes(
    nodes: usize,
    ppn: usize,
    local: usize,
    skip_node: usize,
) -> impl Iterator<Item = usize> {
    (0..nodes).filter(move |&n| n != skip_node && n % ppn == local)
}

/// Split `len` bytes into `parts` contiguous chunks as evenly as possible;
/// returns the `(start, end)` byte range of chunk `index`.
pub fn chunk_bounds(len: usize, parts: usize, index: usize) -> (usize, usize) {
    assert!(index < parts);
    let base = len / parts;
    let extra = len % parts;
    let start = index * base + index.min(extra);
    let size = base + usize::from(index < extra);
    (start, start + size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// Simulate the coverage of the multi-object Bruck exchange for one node
    /// and check that, phase by phase, the gathered region grows exactly as
    /// the paper describes and finally covers all `nodes` node-blocks.
    fn coverage_is_complete(nodes: usize, ppn: usize) {
        let node = 0;
        let mut covered: HashSet<usize> = HashSet::new();
        covered.insert(0); // own node-block after the intra-node gather
        let phase_count = bruck_phase_count(nodes, ppn);
        let per_local: Vec<Vec<BruckTransfer>> = (0..ppn)
            .map(|local| bruck_phases(nodes, ppn, node, local))
            .collect();
        for phases in &per_local {
            assert_eq!(phases.len(), phase_count, "phase count must be uniform");
        }
        for phase in 0..phase_count {
            let new_blocks: Vec<usize> = per_local
                .iter()
                .flat_map(|phases| {
                    let t = phases[phase];
                    (0..t.count).map(move |b| t.recv_offset + b)
                })
                .collect();
            for block in new_blocks {
                assert!(block < nodes, "received block {block} out of range");
                assert!(
                    covered.insert(block),
                    "block {block} received twice ({nodes} nodes, {ppn} ppn)"
                );
            }
        }
        assert_eq!(
            covered.len(),
            nodes,
            "coverage incomplete for {nodes} nodes, {ppn} ppn"
        );
    }

    #[test]
    fn coverage_for_paper_testbed() {
        coverage_is_complete(128, 18);
    }

    #[test]
    fn coverage_for_small_configurations() {
        for nodes in 1..=20 {
            for ppn in 1..=6 {
                coverage_is_complete(nodes, ppn);
            }
        }
    }

    #[test]
    fn coverage_when_ppn_exceeds_nodes() {
        coverage_is_complete(3, 8);
        coverage_is_complete(2, 18);
    }

    #[test]
    fn phase_count_is_logarithmic_in_base_p_plus_1() {
        // 128 nodes, 18 ppn: base 19 -> one full phase (19 <= 128) then a
        // remainder phase.
        assert_eq!(bruck_phase_count(128, 18), 2);
        // Base 2 (ppn 1) degenerates to classic Bruck: ceil(log2(128)) = 7.
        assert_eq!(bruck_phase_count(128, 1), 7);
        // Single node: nothing to exchange.
        assert_eq!(bruck_phase_count(1, 18), 0);
    }

    #[test]
    fn transfers_pair_source_and_destination_symmetrically() {
        let nodes = 10;
        let ppn = 3;
        for local in 0..ppn {
            for t in bruck_phases(nodes, ppn, 4, local) {
                assert_eq!(t.src_node, (4 + t.offset) % nodes);
                assert_eq!(t.dst_node, (4 + nodes - t.offset % nodes) % nodes);
            }
        }
    }

    #[test]
    fn responsible_nodes_partition_the_remote_nodes() {
        let nodes = 11;
        let ppn = 4;
        let skip = 3;
        let mut seen = HashSet::new();
        for local in 0..ppn {
            for n in responsible_nodes(nodes, ppn, local, skip) {
                assert!(n != skip);
                assert!(seen.insert(n), "node {n} assigned twice");
            }
        }
        assert_eq!(seen.len(), nodes - 1);
    }

    #[test]
    fn chunk_bounds_cover_the_buffer_without_gaps() {
        let len = 37;
        let parts = 5;
        let mut expected_start = 0;
        for i in 0..parts {
            let (start, end) = chunk_bounds(len, parts, i);
            assert_eq!(start, expected_start);
            expected_start = end;
        }
        assert_eq!(expected_start, len);
    }

    #[test]
    fn chunk_bounds_handle_len_smaller_than_parts() {
        let (s0, e0) = chunk_bounds(2, 5, 0);
        let (s4, e4) = chunk_bounds(2, 5, 4);
        assert_eq!((s0, e0), (0, 1));
        assert_eq!((s4, e4), (2, 2));
    }

    proptest! {
        #[test]
        fn prop_coverage_random_configurations(nodes in 1usize..200, ppn in 1usize..24) {
            coverage_is_complete(nodes, ppn);
        }

        #[test]
        fn prop_chunks_partition(len in 0usize..10_000, parts in 1usize..64) {
            let mut total = 0;
            let mut prev_end = 0;
            for i in 0..parts {
                let (start, end) = chunk_bounds(len, parts, i);
                prop_assert_eq!(start, prev_end);
                prop_assert!(end >= start);
                total += end - start;
                prev_end = end;
            }
            prop_assert_eq!(total, len);
        }

        #[test]
        fn prop_exchange_has_no_self_sends(nodes in 1usize..200, ppn in 1usize..24, node_seed in 0usize..200) {
            let node = node_seed % nodes;
            for local in 0..ppn {
                for t in bruck_phases(nodes, ppn, node, local) {
                    prop_assert!(t.src_node < nodes);
                    prop_assert!(t.dst_node < nodes);
                    if t.count > 0 {
                        // A non-empty transfer always pairs with a *different*
                        // node: offsets are in 1..nodes, so the modular
                        // pairing can never fold back onto the sender.
                        prop_assert!(t.src_node != node, "self-receive at {nodes}x{ppn} node {node} local {local}");
                        prop_assert!(t.dst_node != node, "self-send at {nodes}x{ppn} node {node} local {local}");
                    }
                }
            }
        }

        #[test]
        fn prop_receive_coverage_is_exactly_once_for_every_node(nodes in 1usize..120, ppn in 1usize..20, node_seed in 0usize..120) {
            // Every node's receive schedule collects each of the other
            // nodes' blocks exactly once (node-relative block indices
            // 1..nodes), regardless of which node it is.
            let node = node_seed % nodes;
            let mut covered: HashSet<usize> = HashSet::new();
            covered.insert(0);
            for local in 0..ppn {
                for t in bruck_phases(nodes, ppn, node, local) {
                    for b in 0..t.count {
                        let block = t.recv_offset + b;
                        prop_assert!(block < nodes);
                        prop_assert!(covered.insert(block), "block {block} received twice at node {node}");
                    }
                }
            }
            prop_assert_eq!(covered.len(), nodes);
        }

        #[test]
        fn prop_sends_and_receives_pair_up_across_nodes(nodes in 2usize..80, ppn in 1usize..12) {
            // Deadlock-freedom of the barrier-separated exchange: if node n
            // expects `count` blocks from node s in phase p (via local l),
            // then node s's schedule sends exactly that transfer to n in the
            // same phase via the same local rank.
            for node in 0..nodes {
                for local in 0..ppn {
                    let mine = bruck_phases(nodes, ppn, node, local);
                    for (phase, t) in mine.iter().enumerate() {
                        let peer = bruck_phases(nodes, ppn, t.src_node, local);
                        let matching = peer[phase];
                        prop_assert_eq!(matching.dst_node, node);
                        prop_assert_eq!(matching.count, t.count);
                        prop_assert_eq!(matching.offset, t.offset);
                    }
                }
            }
        }

        #[test]
        fn prop_rounds_are_logarithmically_bounded(nodes in 1usize..500, ppn in 1usize..32, node_seed in 0usize..500) {
            // At most ceil(log_{P+1}(N)) full phases plus one remainder
            // phase, and every rank agrees on the count (the node barrier
            // between phases relies on that).
            let base = ppn + 1;
            let mut bound = 0usize;
            let mut span = 1usize;
            while span < nodes {
                span = span.saturating_mul(base);
                bound += 1;
            }
            let phase_count = bruck_phase_count(nodes, ppn);
            prop_assert!(phase_count <= bound + 1, "{phase_count} phases > bound {bound} + 1");
            let node = node_seed % nodes;
            for local in 0..ppn {
                prop_assert_eq!(bruck_phases(nodes, ppn, node, local).len(), phase_count);
            }
        }

        #[test]
        fn prop_responsible_nodes_partition(nodes in 1usize..300, ppn in 1usize..32, skip_seed in 0usize..300) {
            let skip = skip_seed % nodes;
            let mut seen = HashSet::new();
            for local in 0..ppn {
                for n in responsible_nodes(nodes, ppn, local, skip) {
                    prop_assert!(seen.insert(n));
                }
            }
            prop_assert_eq!(seen.len(), nodes - 1);
        }
    }
}
