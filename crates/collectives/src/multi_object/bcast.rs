//! Multi-object broadcast: the root publishes its buffer, the root node's
//! processes share the fan-out to the remote nodes, and on every remote node
//! one process receives into shared memory from which all local processes
//! copy the payload.

use crate::comm::Comm;
use crate::multi_object::schedule::responsible_nodes;

/// Multi-object broadcast from global rank `root`: after the call every
/// rank's `buf` equals the root's `buf`.
pub fn bcast_multi_object<C: Comm>(comm: &C, buf: &mut [u8], root: usize, tag: u64) {
    let len = buf.len();
    let ppn = comm.ppn();
    let nodes = comm.num_nodes();
    let node = comm.node_id();
    let local = comm.local_rank();
    let rank = comm.rank();
    let topo = comm.topology();
    let root_node = topo.node_of(root);
    let root_local = topo.local_rank_of(root);
    let src_name = format!("mo_bc_src_{tag}");
    let stage_name = format!("mo_bc_stage_{tag}");

    let receiver_local_for = |n: usize| n % ppn;

    if node == root_node {
        if rank == root {
            comm.shared_publish(&src_name, buf);
        }
        comm.node_barrier();
        for n in responsible_nodes(nodes, ppn, local, root_node) {
            let dst = topo.rank_of(n, receiver_local_for(n));
            comm.send_from_shared(root_local, &src_name, 0, len, dst, tag);
        }
        if rank != root {
            let data = comm.shared_read(root_local, &src_name, 0, len);
            buf.copy_from_slice(&data);
        }
        comm.node_barrier();
    } else {
        let receiver_local = receiver_local_for(node);
        if local == receiver_local {
            comm.shared_alloc(&stage_name, len);
            let sender_local = node % ppn;
            let src = topo.rank_of(root_node, sender_local);
            comm.recv_into_shared(receiver_local, &stage_name, 0, src, tag, len);
        }
        comm.node_barrier();
        let data = comm.shared_read(receiver_local, &stage_name, 0, len);
        buf.copy_from_slice(&data);
        comm.node_barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, len: usize, root: usize) {
        let topo = Topology::new(nodes, ppn);
        let expected = oracle::rank_payload(root, len);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = if comm.rank() == root {
                oracle::rank_payload(root, len)
            } else {
                vec![0u8; len]
            };
            bcast_multi_object(&comm, &mut buf, root, 3500);
            buf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected, "multi-object bcast mismatch at rank {rank}");
        }
    }

    #[test]
    fn root_zero() {
        run(4, 3, 64, 0);
    }

    #[test]
    fn root_not_a_leader() {
        run(3, 3, 32, 4);
    }

    #[test]
    fn single_node() {
        run(1, 5, 16, 3);
    }

    #[test]
    fn single_rank_per_node() {
        run(6, 1, 8, 2);
    }

    #[test]
    fn more_ppn_than_nodes() {
        run(2, 6, 24, 0);
    }

    #[test]
    fn empty_payload() {
        run(2, 2, 0, 0);
    }

    #[test]
    fn trace_fanout_split_across_root_node() {
        let nodes = 9;
        let ppn = 4;
        let topo = Topology::new(nodes, ppn);
        let trace = record_trace(topo, |comm| {
            let mut buf = vec![0u8; 128];
            bcast_multi_object(comm, &mut buf, 0, 1);
        });
        trace.validate().unwrap();
        let sends: Vec<usize> = (0..ppn).map(|r| trace.ranks[r].send_count()).collect();
        // 8 remote nodes over 4 senders: two each.
        assert_eq!(sends, vec![2, 2, 2, 2]);
    }
}
