//! Request bookkeeping for non-blocking and persistent collectives: the
//! progress engine that drives every outstanding [`PlanCursor`] on a
//! communicator.
//!
//! MPI's completion calls (`MPI_Wait`, `MPI_Test`, `MPI_Waitall`) are
//! allowed in *any* order relative to submission, which means waiting on one
//! request must still advance the others — otherwise two ranks waiting on
//! different requests of the same pair of collectives would deadlock.  The
//! [`ProgressEngine`] therefore owns the cursors of **all** outstanding
//! collectives of one communicator, and every [`ProgressEngine::progress`]
//! call steps every one of them.  Completion is observed per request id;
//! completed outputs are parked until the owner collects them with
//! [`ProgressEngine::take_output`].
//!
//! The engine is deliberately single-threaded (one engine per communicator,
//! one communicator per rank thread): progress happens inside the caller's
//! `wait`/`test`, exactly like an MPI implementation progressing from within
//! completion calls.

use std::rc::Rc;

use crate::comm::{NonBlockingComm, ReduceFn};
use crate::plan::cursor::{CursorOutput, PlanCursor, StepOutcome};

/// Identifier of one submitted collective within its engine.
pub type ReqId = u64;

/// An owned, shareable reduction operator (the `Rc` lets a persistent
/// handle keep the operator across repeated starts while the engine holds
/// it for the active execution).
pub type SharedReduceOp = Rc<ReduceFn<'static>>;

/// One submitted collective: either still executing or finished with its
/// output parked.
enum Slot {
    Running {
        // Boxed: a cursor (plan handle, buffers, staging) dwarfs the
        // parked output, and slots outlive many step() passes.
        cursor: Box<PlanCursor>,
        op: Option<SharedReduceOp>,
    },
    Finished(CursorOutput),
}

/// Drives all outstanding non-blocking collectives of one communicator.
#[derive(Default)]
pub struct ProgressEngine {
    slots: Vec<(ReqId, Slot)>,
    next_id: ReqId,
}

impl std::fmt::Debug for ProgressEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressEngine")
            .field("outstanding", &self.outstanding())
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl ProgressEngine {
    /// An engine with no outstanding requests.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a cursor (with its reduction operator, when the plan needs
    /// one) and return the id its completion will be reported under.
    pub fn submit(&mut self, cursor: PlanCursor, op: Option<SharedReduceOp>) -> ReqId {
        assert!(
            !cursor.needs_reduce_op() || op.is_some(),
            "plan requires a reduction operator"
        );
        let id = self.next_id;
        self.next_id += 1;
        self.slots.push((
            id,
            Slot::Running {
                cursor: Box::new(cursor),
                op,
            },
        ));
        id
    }

    /// Step every outstanding cursor once; returns whether *any* of them
    /// made forward progress.  Callers loop on this from `wait`, yielding
    /// between fruitless rounds.
    pub fn progress<C: NonBlockingComm>(&mut self, comm: &C) -> bool {
        let mut advanced = false;
        for (_, slot) in self.slots.iter_mut() {
            if let Slot::Running { cursor, op } = slot {
                match cursor.step(comm, op.as_deref()) {
                    StepOutcome::Advanced | StepOutcome::Done => advanced = true,
                    StepOutcome::Blocked => {}
                }
                if cursor.is_finished() {
                    let finished = match std::mem::replace(
                        slot,
                        Slot::Finished(CursorOutput {
                            sendbuf: None,
                            recvbuf: None,
                        }),
                    ) {
                        Slot::Running { cursor, .. } => cursor.into_output(),
                        Slot::Finished(_) => unreachable!("slot was running"),
                    };
                    *slot = Slot::Finished(finished);
                }
            }
        }
        advanced
    }

    /// Whether request `id` has finished executing (its output is parked and
    /// [`ProgressEngine::take_output`] will succeed).
    pub fn is_complete(&self, id: ReqId) -> bool {
        self.slots
            .iter()
            .any(|(slot_id, slot)| *slot_id == id && matches!(slot, Slot::Finished(_)))
    }

    /// Remove a completed request and return its buffers.
    ///
    /// # Panics
    ///
    /// Panics when `id` is unknown (already taken) or still running.
    pub fn take_output(&mut self, id: ReqId) -> CursorOutput {
        let index = self
            .slots
            .iter()
            .position(|(slot_id, _)| *slot_id == id)
            .expect("request id is outstanding");
        match self.slots.remove(index).1 {
            Slot::Finished(output) => output,
            Slot::Running { .. } => panic!("request {id} has not completed"),
        }
    }

    /// Number of submitted requests not yet taken (running or parked).
    pub fn outstanding(&self) -> usize {
        self.slots.len()
    }

    /// Number of requests still executing.
    pub fn running(&self) -> usize {
        self.slots
            .iter()
            .filter(|(_, slot)| matches!(slot, Slot::Running { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Comm, ThreadComm};
    use crate::plan::ir::{Fidelity, IoShape};
    use crate::plan::record::{assemble, PlanComm, EXEC_PASSES};
    use pip_runtime::{Cluster, Topology};

    /// Compile a two-rank ping with a per-invocation distinct tag space.
    fn compile_exchange(rank: usize, topo: Topology) -> Rc<crate::plan::RankPlan> {
        let passes = (0..EXEC_PASSES as u32)
            .map(|pass| {
                let comm = PlanComm::new(rank, topo, pass, Fidelity::Exec);
                let mut sendbuf = vec![0u8; 2];
                comm.fill_sendbuf(&mut sendbuf);
                let peer = 1 - rank;
                comm.send(peer, 0, &sendbuf);
                let got = comm.recv(peer, 0, 2);
                comm.finish(Some(got))
            })
            .collect();
        Rc::new(assemble(
            rank,
            topo,
            Fidelity::Exec,
            IoShape {
                sendbuf: Some(2),
                recvbuf: Some(2),
                ..IoShape::default()
            },
            passes,
        ))
    }

    /// Several outstanding executions of the same plan complete out of
    /// submission order through one engine.
    #[test]
    fn engine_completes_interleaved_requests_out_of_order() {
        let topo = Topology::new(1, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let plan = compile_exchange(comm.rank(), topo);
            let mut engine = ProgressEngine::new();
            let ids: Vec<ReqId> = (0..4u8)
                .map(|call| {
                    let cursor = PlanCursor::new(
                        Rc::clone(&plan),
                        Some(vec![call * 10 + comm.rank() as u8; 2]),
                        Some(vec![0u8; 2]),
                        (call as u64 + 1) << 16,
                    );
                    engine.submit(cursor, None)
                })
                .collect();
            assert_eq!(engine.outstanding(), 4);
            // Collect in reverse order of submission.
            let mut outputs = vec![Vec::new(); 4];
            for (call, &id) in ids.iter().enumerate().rev() {
                let mut spins = 0u32;
                while !engine.is_complete(id) {
                    if !engine.progress(&comm) {
                        spins += 1;
                        assert!(spins < 1_000_000, "no progress");
                        std::thread::yield_now();
                    }
                }
                outputs[call] = engine.take_output(id).recvbuf.unwrap();
            }
            assert_eq!(engine.outstanding(), 0);
            outputs
        })
        .unwrap();
        for call in 0..4u8 {
            assert_eq!(results[0][call as usize], vec![call * 10 + 1; 2]);
            assert_eq!(results[1][call as usize], vec![call * 10; 2]);
        }
    }
}
