//! Differential harness for error-bounded lossy-compressed collectives —
//! the C-Coll plane's correctness contract, pinned end to end:
//!
//! 1. **Bounded error everywhere**: `allreduce_compressed` (blocking,
//!    non-blocking and persistent) stays within `bound` of the exact
//!    oracle **element-wise on every rank**, across libraries ×
//!    multi-node topologies × swept bounds.  Payloads are multiples of
//!    `0.25` with small magnitude, so the exact sum is representable and
//!    reassociation-free — the oracle is bit-defined and the only
//!    admissible deviation is the codec's.
//! 2. **Compression really engages**: the compiled cluster plan moves
//!    strictly fewer send bytes than the exact plan (and the lossy result
//!    actually differs from the exact one), so the bounded-error pass is
//!    not vacuously exact.
//! 3. **Exact paths stay bit-for-bit**: a zero bound, or a message under
//!    the wire threshold, produces bitwise the plain `allreduce` result —
//!    the spec normalizes away and the exact plan is shared.
//! 4. **Plan-key aliasing regression**: distinct bounds and thresholds
//!    key distinct cache entries; a normalized-away spec keys the *same*
//!    entry as the exact shape.
//! 5. **Codec round-trip property**: randomized streams (including NaN,
//!    infinities, huge magnitudes and empty input) reconstruct within the
//!    bound element-wise, with non-finite values preserved bitwise via
//!    the verbatim fallback.

use proptest::prelude::*;

use pip_mcoll::collectives::compress::{compress, decompress, Codec, FloatElem};
use pip_mcoll::collectives::plan::Fidelity;
use pip_mcoll::collectives::CollectiveKind;
use pip_mcoll::core::prelude::*;
use pip_mcoll::model::plan::{compile_cluster, PlanCache, PlanKey};
use pip_mcoll::model::{CollectiveShape, CompressSpec};
use pip_mcoll::netsim::trace::TraceOp;

/// Multi-node topologies: compression rewrites only inter-node transfers,
/// so single-node worlds would make the harness vacuous.  Engaged-size
/// payloads make each `World` run expensive, so debug builds (the tier-1
/// `cargo test` gate) keep one topology and one bound; release builds
/// sweep the full grid.
#[cfg(debug_assertions)]
const TOPOLOGIES: [(usize, usize); 1] = [(2, 3)];
#[cfg(not(debug_assertions))]
const TOPOLOGIES: [(usize, usize); 2] = [(2, 3), (3, 3)];

/// Swept end-to-end error bounds.
#[cfg(debug_assertions)]
const BOUNDS: [f64; 1] = [1e-2];
#[cfg(not(debug_assertions))]
const BOUNDS: [f64; 2] = [1e-2, 1e-4];

/// Deterministic per-rank payload of multiples of `0.25` in `[-8, 8]`:
/// sums across any rank subset in any order are exactly representable in
/// f64, so the oracle below is *the* exact answer and every deviation in a
/// compressed run is codec error.
fn payload(rank: usize, len: usize, round: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let k = ((i * 7 + rank * 131 + round * 53) % 65) as i64 - 32;
            k as f64 * 0.25
        })
        .collect()
}

/// Element-wise exact sum of every rank's payload.
fn oracle_sum(world: usize, len: usize, round: usize) -> Vec<f64> {
    let mut acc = vec![0.0f64; len];
    for rank in 0..world {
        for (a, v) in acc.iter_mut().zip(payload(rank, len, round)) {
            *a += v;
        }
    }
    acc
}

/// Elements per rank sized so every ring chunk (`block / world`) sits at
/// the profile's wire threshold — the compressed plan engages for the
/// chunked Ring schedules, and the footprint stays under the plan-path
/// bypass limit.
fn engaged_len(library: Library, world: usize) -> usize {
    world * library.profile().selection.compress_min_bytes / 8
}

fn assert_within(got: &[f64], want: &[f64], bound: f64, ctx: &str) {
    assert_eq!(got.len(), want.len(), "length mismatch: {ctx}");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= bound + 1e-12,
            "element {i} breaks the bound: got {g}, want {w}, |err| = {} > {bound} ({ctx})",
            (g - w).abs()
        );
    }
}

/// Contract 1, blocking entry: every library × topology × bound.
#[test]
fn blocking_compressed_allreduce_stays_within_bound_everywhere() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let len = engaged_len(library, world);
            let want = oracle_sum(world, len, 0);
            for bound in BOUNDS {
                let results = World::run_with_profile(topo, library.profile(), |comm| {
                    let mut buf = payload(comm.rank(), len, 0);
                    comm.allreduce_compressed(&mut buf, ReduceOp::Sum, bound);
                    buf
                })
                .unwrap();
                for (rank, got) in results.iter().enumerate() {
                    let ctx = format!(
                        "{} on {nodes}x{ppn} rank {rank} bound {bound:.0e}",
                        library.name()
                    );
                    assert_within(got, &want, bound, &ctx);
                }
            }
        }
    }
}

/// Contract 1, non-blocking + persistent entries: submitted together,
/// persistent restarted with refreshed inputs and pinned against
/// recompiles.
#[test]
fn async_compressed_allreduce_stays_within_bound() {
    const ROUNDS: usize = 2;
    let bound = BOUNDS[0];
    for library in Library::ALL {
        let (nodes, ppn) = TOPOLOGIES[0];
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let len = engaged_len(library, world);

        let results = World::run_with_profile(topo, library.profile(), |comm| {
            let rank = comm.rank();
            let nb = comm
                .iallreduce_compressed(&payload(rank, len, 0), ReduceOp::Sum, bound)
                .wait();

            let mut p =
                comm.allreduce_compressed_init(&payload(rank, len, 0), ReduceOp::Sum, bound);
            let (_, misses_after_init) = comm.plan_stats();
            let mut persistent = Vec::new();
            for round in 0..ROUNDS {
                if round > 0 {
                    p.write_send(&payload(rank, len, round));
                }
                p.start();
                persistent.push(p.wait());
            }
            let (_, misses_after_rounds) = comm.plan_stats();
            assert_eq!(
                misses_after_init, misses_after_rounds,
                "persistent compressed starts must never recompile"
            );
            (nb, persistent)
        })
        .unwrap();

        let want_first = oracle_sum(world, len, 0);
        for (rank, (nb, persistent)) in results.iter().enumerate() {
            let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
            assert_within(nb, &want_first, bound, &format!("iallreduce {ctx}"));
            for (round, got) in persistent.iter().enumerate() {
                let want = oracle_sum(world, len, round);
                assert_within(
                    got,
                    &want,
                    bound,
                    &format!("persistent round {round} {ctx}"),
                );
            }
        }
    }
}

/// Total bytes posted by `TraceOp::Send` across the lowered cluster plan.
fn plan_send_bytes(library: Library, topo: Topology, shape: &CollectiveShape) -> usize {
    let plan = compile_cluster(&library.profile(), topo, shape, Fidelity::Schedule);
    plan.validate().unwrap();
    plan.to_trace(1)
        .ranks
        .iter()
        .flat_map(|r| r.ops.iter())
        .filter_map(|op| match op {
            TraceOp::Send { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .sum()
}

/// Contract 2: the compressed plan moves strictly fewer send bytes than
/// the exact plan for the Ring-selecting comparator, never more for any
/// library — and the lossy numeric result really differs from the exact
/// one, so contract 1 is not passing vacuously.
#[test]
fn compression_engages_in_plans_and_results() {
    let (nodes, ppn) = TOPOLOGIES[0];
    let topo = Topology::new(nodes, ppn);
    let world = topo.world_size();
    for library in Library::ALL {
        let len = engaged_len(library, world);
        let block = len * 8;
        let spec =
            CompressSpec::from_bound(BOUNDS[0], library.profile().selection.compress_min_bytes);
        let mk = |compress| CollectiveShape {
            kind: CollectiveKind::Allreduce,
            block,
            root: 0,
            elem_size: 8,
            reduce: None,
            layout: None,
            compress,
        };
        let exact = plan_send_bytes(library, topo, &mk(None));
        let compressed = plan_send_bytes(library, topo, &mk(spec.normalized_for(block)));
        assert!(
            compressed <= exact,
            "{}: compressed plan moves more bytes ({compressed} > {exact})",
            library.name()
        );
        if library == Library::OpenMpi {
            assert!(
                compressed < exact,
                "ring compressed plan must shed send bytes ({compressed} vs {exact})"
            );
        }
    }

    // Numeric engagement on the ring: the lossy result differs from the
    // exact one somewhere (while staying within the bound — contract 1).
    let library = Library::OpenMpi;
    let len = engaged_len(library, world);
    let lossy = World::run_with_profile(topo, library.profile(), |comm| {
        let mut buf = payload(comm.rank(), len, 0);
        comm.allreduce_compressed(&mut buf, ReduceOp::Sum, BOUNDS[0]);
        buf
    })
    .unwrap();
    let want = oracle_sum(world, len, 0);
    assert!(
        lossy[0].iter().zip(&want).any(|(g, w)| g != w),
        "loose-bound compressed allreduce reproduced the exact sum bit-for-bit — \
         the codec cannot have engaged"
    );
}

/// Contract 3: a zero bound and an under-threshold message both normalize
/// to the exact plan and reproduce plain `allreduce` bit-for-bit.
#[test]
fn exact_paths_stay_bit_for_bit() {
    let (nodes, ppn) = TOPOLOGIES[0];
    let topo = Topology::new(nodes, ppn);
    for library in Library::ALL {
        let world = topo.world_size();
        let big = engaged_len(library, world);
        let small = 64; // 512 B: far under every wire threshold.
        let results = World::run_with_profile(topo, library.profile(), move |comm| {
            let rank = comm.rank();
            // Zero bound on an engaged-size message.
            let mut zero_bound = payload(rank, big, 0);
            comm.allreduce_compressed(&mut zero_bound, ReduceOp::Sum, 0.0);
            let mut plain_big = payload(rank, big, 0);
            comm.allreduce(&mut plain_big, ReduceOp::Sum);
            // Loose bound on an under-threshold message.
            let mut tiny = payload(rank, small, 0);
            comm.allreduce_compressed(&mut tiny, ReduceOp::Sum, BOUNDS[0]);
            let mut plain_tiny = payload(rank, small, 0);
            comm.allreduce(&mut plain_tiny, ReduceOp::Sum);
            (zero_bound, plain_big, tiny, plain_tiny)
        })
        .unwrap();
        for (rank, (zero_bound, plain_big, tiny, plain_tiny)) in results.iter().enumerate() {
            let ctx = format!("{} rank {rank}", library.name());
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(zero_bound),
                bits(plain_big),
                "bound 0.0 diverged from plain allreduce ({ctx})"
            );
            assert_eq!(
                bits(tiny),
                bits(plain_tiny),
                "under-threshold message diverged from plain allreduce ({ctx})"
            );
        }
    }
}

/// Contract 4: compression is part of the plan key.  Distinct bounds and
/// thresholds never alias; a normalized-away spec shares the exact entry.
#[test]
fn compression_specs_key_distinct_plan_cache_entries() {
    let profile = Library::PipMColl.profile();
    let topo = Topology::new(2, 2);
    let block = 1 << 17; // 128 KiB: above every threshold used below.
    let mk = |compress| CollectiveShape {
        kind: CollectiveKind::Allreduce,
        block,
        root: 0,
        elem_size: 8,
        reduce: None,
        layout: None,
        compress,
    };
    let shapes = [
        mk(None),
        mk(CompressSpec::from_bound(1e-2, 1 << 15).normalized_for(block)),
        mk(CompressSpec::from_bound(1e-4, 1 << 15).normalized_for(block)),
        // Same bound, different wire threshold: still a different plan —
        // which transfers get rewritten depends on the threshold.
        mk(CompressSpec::from_bound(1e-2, 1 << 17).normalized_for(block)),
    ];
    for s in &shapes[1..] {
        assert!(s.compress.is_some(), "spec unexpectedly normalized away");
    }
    for (i, a) in shapes.iter().enumerate() {
        for b in &shapes[i + 1..] {
            assert_ne!(
                PlanKey::new(&profile, topo, *a),
                PlanKey::new(&profile, topo, *b),
                "{a:?} and {b:?} alias one plan key"
            );
        }
    }
    let mut cache = PlanCache::new();
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(cache.len(), shapes.len());
    assert_eq!(cache.stats(), (0, shapes.len() as u64));

    // Normalized-away specs share the exact entry: zero bound, and a
    // message under the threshold, both key identically to no spec.
    assert_eq!(
        PlanKey::new(
            &profile,
            topo,
            mk(CompressSpec::from_bound(0.0, 1 << 15).normalized_for(block))
        ),
        PlanKey::new(&profile, topo, mk(None)),
    );
    assert!(CompressSpec::from_bound(1e-2, block * 2)
        .normalized_for(block)
        .is_none());
    cache.lookup_or_compile(
        &profile,
        topo,
        0,
        &mk(CompressSpec::from_bound(0.0, 1 << 15).normalized_for(block)),
    );
    assert_eq!(cache.len(), shapes.len(), "exact entry was not shared");
    assert_eq!(cache.stats(), (1, shapes.len() as u64));
}

/// Contract 5 support: one round-trip through the public codec, asserting
/// the bound on finite elements and bitwise preservation of non-finite
/// ones (verbatim fallback).
fn check_roundtrip_f64(values: &[f64], bound: f64) {
    let codec = Codec {
        elem: FloatElem::F64,
        bound,
    };
    let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let frame = compress(&data, codec);
    let back = decompress(&frame, data.len(), codec);
    assert_eq!(back.len(), data.len());
    for (i, (orig, chunk)) in values.iter().zip(back.chunks_exact(8)).enumerate() {
        let got = f64::from_le_bytes(chunk.try_into().unwrap());
        if orig.is_finite() {
            assert!(
                (got - orig).abs() <= bound,
                "element {i}: |{got} - {orig}| > {bound}"
            );
        } else {
            assert_eq!(
                got.to_bits(),
                orig.to_bits(),
                "non-finite element {i} not preserved bitwise"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized f64 streams — smooth-ish, jumpy, huge, special — round-
    /// trip within the bound; NaN/infinities survive bitwise.  The shim's
    /// integer strategies drive a seed-to-float map that mixes ordinary
    /// magnitudes with NaN, infinities, signed zeros, huge values and
    /// subnormals.
    #[test]
    fn prop_codec_roundtrip_f64(
        seeds in collection::vec(0u64..u64::MAX, 0..600),
        bound_idx in 0usize..4,
    ) {
        let bound = [1e-1, 1e-3, 1e-6, 1e-9][bound_idx];
        let values: Vec<f64> = seeds.iter().map(|&s| f64_from_seed(s)).collect();
        check_roundtrip_f64(&values, bound);
    }

    /// f32 streams under the f32 codec: the bound holds in the stored
    /// (f32) domain, non-finite lanes survive bitwise.
    #[test]
    fn prop_codec_roundtrip_f32(
        seeds in collection::vec(0u64..u64::MAX, 0..600),
        bound_idx in 0usize..2,
    ) {
        let bound = [1e-1, 1e-3][bound_idx];
        let codec = Codec { elem: FloatElem::F32, bound };
        let values: Vec<f32> = seeds.iter().map(|&s| f32_from_seed(s)).collect();
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let frame = compress(&data, codec);
        let back = decompress(&frame, data.len(), codec);
        prop_assert_eq!(back.len(), data.len());
        for (i, (orig, chunk)) in values.iter().zip(back.chunks_exact(4)).enumerate() {
            let got = f32::from_le_bytes(chunk.try_into().unwrap());
            if orig.is_finite() {
                prop_assert!(
                    (f64::from(got) - f64::from(*orig)).abs() <= bound,
                    "element {}: |{} - {}| > {}", i, got, orig, bound
                );
            } else {
                prop_assert_eq!(got.to_bits(), orig.to_bits(), "non-finite element {} lost", i);
            }
        }
    }
}

/// Map a random seed to an f64: mostly ordinary magnitudes in
/// `[-1e6, 1e6)`, with a 1-in-4 sprinkle of special values.
fn f64_from_seed(seed: u64) -> f64 {
    match seed % 32 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 1e300,
        4 => -1e300,
        5 => f64::MIN_POSITIVE,
        6 => 0.0,
        7 => -0.0,
        _ => {
            let unit = (seed >> 11) as f64 / (1u64 << 53) as f64;
            unit * 2e6 - 1e6
        }
    }
}

/// f32 twin of [`f64_from_seed`] over `[-1e4, 1e4)`.
fn f32_from_seed(seed: u64) -> f32 {
    match seed % 32 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0f32,
        _ => {
            let unit = (seed >> 11) as f64 / (1u64 << 53) as f64;
            (unit * 2e4 - 1e4) as f32
        }
    }
}
