//! Integration tests of the full measurement pipeline (dispatch → trace →
//! simulation): the qualitative claims of the paper's figures must hold on
//! clusters small enough to simulate in a debug-build test run.

use pip_mcoll::collectives::CollectiveKind;
use pip_mcoll::model::{dispatch, Library};
use pip_mcoll::netsim::cluster::ClusterSpec;
use pip_mcoll::netsim::network::simulate;
use pip_mcoll_bench::figures::collective_comparison;

#[test]
fn pip_mcoll_wins_small_message_allgather_and_scatter() {
    let cluster = ClusterSpec::new(12, 6);
    for kind in [CollectiveKind::Allgather, CollectiveKind::Scatter] {
        let table = collective_comparison(kind, cluster, &[16, 64, 256]);
        assert!(table.pip_mcoll_fastest_everywhere(), "{kind:?}: {table:?}");
    }
}

#[test]
fn allgather_advantage_is_substantial_at_64_bytes() {
    // The paper's CLAIM-4.6: PiP-MColl is several times faster than the
    // fastest competitor for small allgathers.  The factor grows with the
    // node count (the full >4.6x is checked at paper scale by the ignored
    // test below and by the `fig2_allgather` binary); at this reduced scale
    // it must still be a clear win.
    let cluster = ClusterSpec::new(16, 8);
    let table = collective_comparison(CollectiveKind::Allgather, cluster, &[64]);
    let (_, speedup) = table.best_speedup_vs_fastest_competitor();
    assert!(speedup > 1.4, "expected a clear win, got {speedup:.2}x");
}

#[test]
fn pip_mpich_is_among_the_slowest_for_small_messages() {
    // CLAIM-PIPMPICH: the PiP baseline without the multi-object design is
    // sometimes the worst implementation.
    let cluster = ClusterSpec::new(12, 6);
    let table = collective_comparison(CollectiveKind::Allgather, cluster, &[16, 32, 64]);
    assert!(table.pip_mpich_worst_count() >= 1, "{table:?}");
}

#[test]
fn multi_object_beats_single_leader_for_every_collective_kind() {
    let cluster = ClusterSpec::new(8, 6);
    let topology = cluster.topology();
    let mcoll = Library::PipMColl.profile();
    let mvapich = Library::Mvapich2.profile();
    let bytes = 128;

    type Recorder =
        Box<dyn Fn(&pip_mcoll::model::LibraryProfile) -> pip_mcoll::netsim::trace::Trace>;
    let cases: Vec<(&str, Recorder)> = vec![
        (
            "allgather",
            Box::new(move |p: &pip_mcoll::model::LibraryProfile| {
                dispatch::record_allgather(p, topology, bytes)
            }),
        ),
        (
            "scatter",
            Box::new(move |p: &pip_mcoll::model::LibraryProfile| {
                dispatch::record_scatter(p, topology, bytes, 0)
            }),
        ),
        (
            "bcast",
            Box::new(move |p: &pip_mcoll::model::LibraryProfile| {
                dispatch::record_bcast(p, topology, bytes, 0)
            }),
        ),
        (
            "allreduce",
            Box::new(move |p: &pip_mcoll::model::LibraryProfile| {
                dispatch::record_allreduce(p, topology, 4096)
            }),
        ),
    ];
    for (name, record) in cases {
        let t_mcoll = simulate("mcoll", &record(&mcoll), &mcoll.sim_params(cluster.nic))
            .unwrap()
            .makespan_ns;
        let t_mvapich = simulate(
            "mvapich",
            &record(&mvapich),
            &mvapich.sim_params(cluster.nic),
        )
        .unwrap()
        .makespan_ns;
        assert!(
            t_mcoll < t_mvapich,
            "{name}: PiP-MColl {t_mcoll:.0} ns should beat MVAPICH2 {t_mvapich:.0} ns"
        );
    }
}

#[test]
fn simulation_is_deterministic_across_repeated_runs() {
    let cluster = ClusterSpec::new(6, 4);
    let profile = Library::PipMColl.profile();
    let params = profile.sim_params(cluster.nic);
    let trace = dispatch::record_allgather(&profile, cluster.topology(), 64);
    let a = simulate("a", &trace, &params).unwrap();
    let b = simulate("b", &trace, &params).unwrap();
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.internode_messages, b.internode_messages);
}

#[test]
fn execution_time_is_monotone_in_message_size_for_every_library() {
    let cluster = ClusterSpec::new(8, 4);
    let table = collective_comparison(CollectiveKind::Allgather, cluster, &[16, 128, 1024]);
    for series in &table.series {
        assert!(
            series.time_us[0] <= series.time_us[1] && series.time_us[1] <= series.time_us[2],
            "{:?}: {:?}",
            series.library,
            series.time_us
        );
    }
}

#[test]
#[ignore = "paper-scale simulation; run with --ignored (a few seconds in release)"]
fn paper_scale_allgather_headline_claim() {
    let cluster = ClusterSpec::hpdc23();
    let table = collective_comparison(CollectiveKind::Allgather, cluster, &[64]);
    let (_, speedup) = table.best_speedup_vs_fastest_competitor();
    assert!(
        speedup > 4.0,
        "paper reports >4.6x at 64 B; model gives {speedup:.2}x"
    );
}

#[test]
#[ignore = "beyond-testbed simulation; run with --ignored (seconds in release)"]
fn thousand_node_allgather_headline_claim() {
    // 1024 nodes x 18 ppn = 18,432 ranks — 8x the paper's testbed, a scale
    // the seed heap engine could not turn around inside a test budget.  The
    // calendar engine replays the full five-library comparison in seconds,
    // and the small-message advantage grows with the node count, so the
    // 128-node headline bound must still clear.
    let cluster = ClusterSpec::new(1024, 18);
    let table = collective_comparison(CollectiveKind::Allgather, cluster, &[64]);
    let (_, speedup) = table.best_speedup_vs_fastest_competitor();
    assert!(
        speedup > 4.0,
        "paper reports >4.6x at 64 B on 128 nodes; at 1024 nodes the model gives {speedup:.2}x"
    );
}
