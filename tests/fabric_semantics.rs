//! Integration tests pinning the observable semantics of the multi-object
//! (sharded) fabric against the single-queue baseline it replaced.
//!
//! The mailbox sharding is a pure performance transformation: per-(source,
//! tag) FIFO order, wildcard arrival order, and matched-receive results must
//! be byte-identical to the pre-multi-object single-queue fabric under any
//! interleaving of senders and any receive order.  The properties here
//! generate random workloads and drive both layouts through them.

use std::time::Duration;

use pip_mcoll::runtime::fabric::MatchSpec;
use pip_mcoll::runtime::{Fabric, MailboxLayout};
use proptest::prelude::*;

/// Deterministic splitmix64, used to derive randomized receive orders from a
/// generated seed (the shim proptest has no `Vec` shuffling strategy).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn layouts_under_test() -> [MailboxLayout; 3] {
    [
        MailboxLayout::SingleQueue,
        MailboxLayout::Sharded { shards: 2 },
        MailboxLayout::Sharded { shards: 8 },
    ]
}

/// Run one generated workload: `sources` sender threads each send
/// `per_lane` messages on each of `tags` tag lanes to rank 0 (interleaved
/// across lanes, so arrival order mixes lanes), then the receiver drains
/// every lane in a seed-derived random order.  Returns, per (source, tag)
/// lane, the sequence of payload indices in receive order.
fn run_workload(
    layout: MailboxLayout,
    sources: usize,
    tags: usize,
    per_lane: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    let world = sources + 1;
    let fabric = Fabric::with_layout(world, layout, Duration::from_secs(20));
    std::thread::scope(|scope| {
        for source in 1..=sources {
            let fabric = fabric.clone();
            scope.spawn(move || {
                // Interleave lanes: message i of every tag goes out before
                // message i + 1 of any tag.
                for index in 0..per_lane {
                    for tag in 0..tags as u64 {
                        fabric
                            .send(source, 0, tag, vec![source as u8, tag as u8, index as u8])
                            .unwrap();
                    }
                }
            });
        }
    });
    // Drain lanes one exact receive at a time, in a randomized lane order.
    let mut rng = seed;
    let mut remaining: Vec<(usize, u64, usize)> = (1..=sources)
        .flat_map(|s| (0..tags as u64).map(move |t| (s, t, per_lane)))
        .collect();
    let mut received: Vec<Vec<u8>> = vec![Vec::new(); sources * tags + tags];
    while !remaining.is_empty() {
        let pick = (splitmix(&mut rng) % remaining.len() as u64) as usize;
        let (source, tag, left) = &mut remaining[pick];
        let msg = fabric.recv(0, MatchSpec::exact(*source, *tag)).unwrap();
        assert_eq!(msg.source, *source);
        assert_eq!(msg.tag, *tag);
        assert_eq!(msg.payload[0] as usize, *source);
        assert_eq!(msg.payload[1] as u64, *tag);
        received[*source * tags + *tag as usize].push(msg.payload[2]);
        *left -= 1;
        if *left == 0 {
            remaining.swap_remove(pick);
        }
    }
    assert_eq!(fabric.pending(0).unwrap(), 0, "every message was received");
    received
}

proptest! {
    /// Per-(source, tag) FIFO order holds under every layout, for any
    /// interleaving of concurrent senders and any receive order — and the
    /// sharded layouts observe exactly what the single-queue baseline does.
    #[test]
    fn prop_fifo_per_lane_and_layouts_agree(
        sources in 1usize..5,
        tags in 1usize..5,
        per_lane in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        let baseline = run_workload(MailboxLayout::SingleQueue, sources, tags, per_lane, seed);
        for lane in &baseline {
            if !lane.is_empty() {
                let expected: Vec<u8> = (0..per_lane as u8).collect();
                prop_assert_eq!(lane, &expected);
            }
        }
        for layout in [MailboxLayout::Sharded { shards: 2 }, MailboxLayout::Sharded { shards: 8 }] {
            let sharded = run_workload(layout, sources, tags, per_lane, seed);
            prop_assert_eq!(&sharded, &baseline);
        }
    }

    /// Wildcard (ANY_SOURCE + ANY_TAG) receives observe global arrival
    /// order regardless of which shard each lane hashes to: a single sender
    /// interleaving many tags is received in exactly send order.
    #[test]
    fn prop_wildcard_receives_preserve_arrival_order(
        tags in 1usize..9,
        per_lane in 1usize..6,
    ) {
        for layout in layouts_under_test() {
            let fabric = Fabric::with_layout(2, layout, Duration::from_secs(20));
            let mut sent = Vec::new();
            for index in 0..per_lane {
                for tag in 0..tags as u64 {
                    fabric.send(1, 0, tag, vec![tag as u8, index as u8]).unwrap();
                    sent.push((tag, index as u8));
                }
            }
            for (tag, index) in sent {
                let msg = fabric.recv(0, MatchSpec::any()).unwrap();
                prop_assert_eq!(msg.tag, tag);
                prop_assert_eq!(msg.payload.as_slice(), &[tag as u8, index]);
            }
        }
    }
}

/// Cross-shard non-interference, pinned on counts rather than wall clock:
/// an exact receive stays O(1) — it examines exactly one lane head — no
/// matter how much unmatched traffic from other (source, tag) pairs is
/// queued in the other lanes.
#[test]
fn exact_receives_ignore_unmatched_backlog() {
    let fabric = Fabric::new(4);
    // Flood rank 0 with unmatched messages across many lanes.
    let backlog = 4000;
    for i in 0..backlog as u64 {
        fabric.send(1, 0, 1000 + i, vec![0]).unwrap();
        fabric.send(2, 0, 1000 + i, vec![0]).unwrap();
    }
    let scanned_before = fabric.stats().messages_scanned;
    fabric.send(3, 0, 7, vec![42]).unwrap();
    let msg = fabric.recv(0, MatchSpec::exact(3, 7)).unwrap();
    assert_eq!(msg.payload, vec![42]);
    assert_eq!(
        fabric.stats().messages_scanned - scanned_before,
        1,
        "an exact receive must not wade through other lanes' backlog"
    );
    assert_eq!(fabric.pending(0).unwrap(), 2 * backlog);
}

/// The single-queue baseline, by contrast, scans the whole backlog for the
/// same receive — the measured difference `bench_fabric` turns into a
/// throughput curve.
#[test]
fn single_queue_scans_the_backlog_for_the_same_receive() {
    let fabric = Fabric::with_layout(
        4,
        MailboxLayout::SingleQueue,
        std::time::Duration::from_secs(20),
    );
    let backlog = 4000;
    for i in 0..backlog as u64 {
        fabric.send(1, 0, 1000 + i, vec![0]).unwrap();
    }
    let scanned_before = fabric.stats().messages_scanned;
    fabric.send(3, 0, 7, vec![42]).unwrap();
    let msg = fabric.recv(0, MatchSpec::exact(3, 7)).unwrap();
    assert_eq!(msg.payload, vec![42]);
    assert_eq!(
        fabric.stats().messages_scanned - scanned_before,
        backlog + 1,
        "the baseline pays a full scan for the late-matched receive"
    );
}
