//! Property-based integration tests: for randomly drawn topologies, message
//! sizes and libraries, recorded collective schedules are structurally valid
//! (matched sends/receives, consistent barriers), simulate without deadlock,
//! and respect basic physical invariants.

use proptest::prelude::*;

use pip_mcoll::model::{dispatch, Library, LibraryProfile};
use pip_mcoll::netsim::cluster::ClusterSpec;
use pip_mcoll::netsim::network::simulate;
use pip_mcoll::runtime::Topology;

fn arb_library() -> impl Strategy<Value = Library> {
    prop_oneof![
        Just(Library::OpenMpi),
        Just(Library::IntelMpi),
        Just(Library::Mvapich2),
        Just(Library::PipMpich),
        Just(Library::PipMColl),
    ]
}

fn record(
    profile: &LibraryProfile,
    topology: Topology,
    collective: u8,
    bytes: usize,
) -> pip_mcoll::netsim::trace::Trace {
    match collective % 5 {
        0 => dispatch::record_allgather(profile, topology, bytes),
        1 => dispatch::record_scatter(profile, topology, bytes, 0),
        2 => dispatch::record_bcast(profile, topology, bytes, 0),
        3 => dispatch::record_allreduce(profile, topology, bytes.max(1)),
        _ => dispatch::record_gather(profile, topology, bytes, 0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recorded_schedules_validate_and_simulate(
        nodes in 1usize..10,
        ppn in 1usize..6,
        bytes in 1usize..1024,
        collective in 0u8..5,
        library in arb_library(),
    ) {
        let topology = Topology::new(nodes, ppn);
        let profile = library.profile();
        let trace = record(&profile, topology, collective, bytes);
        prop_assert!(trace.validate().is_ok());
        let params = profile.sim_params(ClusterSpec::new(nodes, ppn).nic);
        let report = simulate(library.name(), &trace, &params);
        prop_assert!(report.is_ok(), "simulation failed: {report:?}");
        let report = report.unwrap();
        prop_assert!(report.makespan_ns.is_finite());
        prop_assert!(report.makespan_ns >= 0.0);
        prop_assert!(report.nic_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn larger_payloads_never_finish_faster(
        nodes in 2usize..8,
        ppn in 1usize..5,
        bytes in 8usize..512,
        library in arb_library(),
    ) {
        let topology = Topology::new(nodes, ppn);
        let profile = library.profile();
        let params = profile.sim_params(ClusterSpec::new(nodes, ppn).nic);
        let small = simulate("s", &dispatch::record_allgather(&profile, topology, bytes), &params).unwrap();
        let large = simulate("l", &dispatch::record_allgather(&profile, topology, bytes * 4), &params).unwrap();
        prop_assert!(large.makespan_ns + 1e-6 >= small.makespan_ns);
    }

    #[test]
    fn internode_traffic_of_allgather_is_at_least_the_information_bound(
        nodes in 2usize..8,
        ppn in 1usize..5,
        bytes in 1usize..256,
    ) {
        // Every node must receive every other node's contribution at least
        // once: (nodes - 1) * ppn * bytes inbound per node.
        let topology = Topology::new(nodes, ppn);
        let profile = Library::PipMColl.profile();
        let trace = dispatch::record_allgather(&profile, topology, bytes);
        let lower_bound = nodes * (nodes - 1) * ppn * bytes;
        let mut internode_bytes = 0usize;
        for (rank, rt) in trace.ranks.iter().enumerate() {
            for op in &rt.ops {
                if let pip_mcoll::netsim::trace::TraceOp::Send { dest, bytes, .. } = op {
                    if !topology.same_node(rank, *dest) {
                        internode_bytes += bytes;
                    }
                }
            }
        }
        prop_assert!(internode_bytes >= lower_bound,
            "{internode_bytes} < {lower_bound} for {nodes}x{ppn}, {bytes} B");
    }

    #[test]
    fn multi_object_critical_path_messages_are_bounded(
        nodes in 2usize..40,
        ppn in 1usize..8,
        bytes in 1usize..128,
    ) {
        // The multi-object allgather sends at most one message per phase per
        // process, and there are at most log_{P+1}(N) + 1 phases.
        let topology = Topology::new(nodes, ppn);
        let profile = Library::PipMColl.profile();
        let trace = dispatch::record_allgather(&profile, topology, bytes);
        let phases = {
            let base = ppn + 1;
            let mut span = 1usize;
            let mut count = 0usize;
            while span * base <= nodes {
                span *= base;
                count += 1;
            }
            if span < nodes { count += 1; }
            count
        };
        for rt in &trace.ranks {
            prop_assert!(rt.send_count() <= phases);
        }
    }
}
