//! Failure-injection integration tests: the runtime and the simulator must
//! turn broken programs and broken schedules into structured errors, never
//! into hangs or silent corruption.

use std::time::Duration;

use pip_mcoll::core::prelude::*;
use pip_mcoll::netsim::engine::{SimEngine, SimError};
use pip_mcoll::netsim::params::SimParams;
use pip_mcoll::netsim::trace::{Trace, TraceOp};
use pip_mcoll::runtime::{Cluster, RuntimeError, Topology};

#[test]
fn task_panic_is_attributed_to_the_failing_rank() {
    let err = Cluster::launch(Topology::new(2, 2), |ctx| {
        if ctx.rank() == 3 {
            panic!("injected fault on rank 3");
        }
        ctx.rank()
    })
    .unwrap_err();
    match err {
        RuntimeError::TaskPanicked { rank, message } => {
            assert_eq!(rank, 3);
            assert!(message.contains("injected fault"));
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn mismatched_point_to_point_times_out_instead_of_hanging() {
    let results =
        Cluster::launch_with_timeout(Topology::new(1, 2), Duration::from_millis(50), |ctx| {
            if ctx.rank() == 0 {
                // Waits for a message that is never sent.
                ctx.recv(1, 99).map(|_| ())
            } else {
                Ok(())
            }
        })
        .unwrap();
    assert!(matches!(results[0], Err(RuntimeError::RecvTimeout { .. })));
    assert!(results[1].is_ok());
}

#[test]
fn wrong_sized_region_access_is_reported() {
    let results = Cluster::launch(Topology::new(1, 2), |ctx| {
        if ctx.local_rank() == 0 {
            ctx.expose("window", 8);
        }
        ctx.node_barrier();
        let region = ctx.attach(0, "window");
        let outcome = region.try_write(6, &[0u8; 8]);
        ctx.node_barrier();
        outcome
    })
    .unwrap();
    assert!(matches!(
        results[1],
        Err(RuntimeError::RegionOutOfBounds { capacity: 8, .. })
    ));
}

#[test]
fn simulator_rejects_unmatched_schedules() {
    let mut trace = Trace::empty(Topology::new(2, 1));
    trace.push(
        0,
        TraceOp::Send {
            dest: 1,
            bytes: 64,
            tag: 0,
        },
    );
    // Receive never posted on rank 1.
    let err = SimEngine::new(SimParams::default())
        .run(&trace)
        .unwrap_err();
    assert!(matches!(err, SimError::InvalidTrace(_)));
}

#[test]
fn simulator_reports_circular_waits_as_deadlock() {
    let mut trace = Trace::empty(Topology::new(2, 1));
    trace.push(
        0,
        TraceOp::Recv {
            source: 1,
            bytes: 8,
            tag: 0,
        },
    );
    trace.push(
        0,
        TraceOp::Send {
            dest: 1,
            bytes: 8,
            tag: 0,
        },
    );
    trace.push(
        1,
        TraceOp::Recv {
            source: 0,
            bytes: 8,
            tag: 0,
        },
    );
    trace.push(
        1,
        TraceOp::Send {
            dest: 0,
            bytes: 8,
            tag: 0,
        },
    );
    let err = SimEngine::new(SimParams::default())
        .run(&trace)
        .unwrap_err();
    match err {
        SimError::Deadlock { stuck_ranks } => assert_eq!(stuck_ranks, vec![0, 1]),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn user_program_panic_surfaces_through_the_world_api() {
    let err = World::builder()
        .nodes(1)
        .ppn(3)
        .library(Library::PipMColl)
        .run(|comm| {
            if comm.rank() == 2 {
                panic!("application bug");
            }
            comm.rank()
        })
        .unwrap_err();
    assert!(err.to_string().contains("application bug"));
}
