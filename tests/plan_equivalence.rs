//! The plan/execute split is pinned both ways:
//!
//! 1. **Executor vs. oracle** — compiling every collective × library on a
//!    topology grid (including non-power-of-two worlds) to exec-fidelity
//!    plans and running them through `execute_planned` on the thread runtime
//!    reproduces the sequential oracle exactly.
//! 2. **Lowering vs. legacy recording** — lowering a schedule-fidelity plan
//!    with `Plan::to_trace` is op-for-op identical to the legacy path that
//!    replays the algorithm once per rank through `TraceComm`.

use std::cell::RefCell;

use pip_mcoll::collectives::oracle;
use pip_mcoll::collectives::plan::Fidelity;
use pip_mcoll::collectives::{CollectiveKind, ReduceOp, Reduction, ThreadComm};
use pip_mcoll::model::plan::{compile_cluster, PlanCache};
use pip_mcoll::model::{dispatch, CollectiveRequest, CollectiveShape, Library};
use pip_mcoll::runtime::{Cluster, Topology};

const TOPOLOGIES: [(usize, usize); 5] = [(1, 1), (1, 4), (2, 3), (3, 3), (5, 2)];

/// Run every collective twice through the planned dispatcher on the thread
/// runtime (second run must hit the cache) and compare against the oracle.
#[test]
fn plan_executor_matches_oracle_for_every_collective_and_library() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5; // odd block size to stress uneven partitions
            let root = (world - 1) / 2;
            let profile = library.profile();

            let contributions: Vec<Vec<u8>> =
                (0..world).map(|r| oracle::rank_payload(r, block)).collect();
            let expected_allgather = oracle::allgather(&contributions);
            let expected_gather = oracle::gather(&contributions);
            let expected_allreduce = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
            let scatter_src = oracle::rank_payload(root, world * block);
            let expected_scatter = oracle::scatter(&scatter_src, world);
            let bcast_src = oracle::rank_payload(root, block);
            let alltoall_inputs: Vec<Vec<u8>> = (0..world)
                .map(|r| oracle::rank_payload(r, world * block))
                .collect();
            let expected_alltoall = oracle::alltoall(&alltoall_inputs, world);

            let scatter_src_ref = &scatter_src;
            let bcast_src_ref = &bcast_src;
            let results = Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                let rank = ctx.rank();
                let cache = RefCell::new(PlanCache::new());
                let mut tag = 0u64;
                let mut run = |request: CollectiveRequest<'_>| {
                    tag += 1 << 16;
                    dispatch::execute_planned(
                        &profile,
                        &comm,
                        request,
                        tag,
                        &mut cache.borrow_mut(),
                    );
                };

                // Allgather, twice (the repeat must be served by the cache).
                let sendbuf = oracle::rank_payload(rank, block);
                let mut allgather_out = vec![0u8; world * block];
                for _ in 0..2 {
                    allgather_out.fill(0);
                    run(CollectiveRequest::Allgather {
                        sendbuf: &sendbuf,
                        recvbuf: &mut allgather_out,
                    });
                }

                // Scatter from a mid-world root.
                let mut scatter_out = vec![0u8; block];
                run(CollectiveRequest::Scatter {
                    sendbuf: (rank == root).then_some(scatter_src_ref.as_slice()),
                    recvbuf: &mut scatter_out,
                    root,
                });

                // Bcast from the same root.
                let mut bcast_out = if rank == root {
                    bcast_src_ref.clone()
                } else {
                    vec![0u8; block]
                };
                run(CollectiveRequest::Bcast {
                    buf: &mut bcast_out,
                    root,
                });

                // Gather to the root.
                let mut gather_out = vec![0u8; world * block];
                run(CollectiveRequest::Gather {
                    sendbuf: &sendbuf,
                    recvbuf: (rank == root).then_some(gather_out.as_mut_slice()),
                    root,
                });

                // Allreduce (byte-wise wrapping sum).
                let mut allreduce_out = oracle::rank_payload(rank, block);
                run(CollectiveRequest::Allreduce {
                    buf: &mut allreduce_out,
                    op: Reduction::typed::<u8>(ReduceOp::Sum),
                    layout: None,
                    compress: None,
                });

                // Alltoall.
                let alltoall_in = oracle::rank_payload(rank, world * block);
                let mut alltoall_out = vec![0u8; world * block];
                run(CollectiveRequest::Alltoall {
                    sendbuf: &alltoall_in,
                    recvbuf: &mut alltoall_out,
                });

                // Barrier.
                run(CollectiveRequest::Barrier);

                let (hits, misses) = cache.borrow().stats();
                (
                    allgather_out,
                    scatter_out,
                    bcast_out,
                    gather_out,
                    allreduce_out,
                    alltoall_out,
                    hits,
                    misses,
                )
            })
            .unwrap();

            for (rank, result) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                let (allgather, scatter, bcast, gather, allreduce, alltoall, hits, misses) = result;
                assert_eq!(allgather, &expected_allgather, "allgather {ctx}");
                assert_eq!(scatter, &expected_scatter[rank], "scatter {ctx}");
                assert_eq!(bcast, &bcast_src, "bcast {ctx}");
                if rank == root {
                    assert_eq!(gather, &expected_gather, "gather {ctx}");
                }
                assert_eq!(allreduce, &expected_allreduce, "allreduce {ctx}");
                assert_eq!(alltoall, &expected_alltoall[rank], "alltoall {ctx}");
                assert_eq!(*hits, 1, "repeated allgather must hit the cache ({ctx})");
                assert_eq!(
                    *misses, 7,
                    "seven distinct shapes compile once each ({ctx})"
                );
            }
        }
    }
}

/// Every collective's schedule-fidelity plan lowers to exactly the trace the
/// legacy per-rank replay produces, for every library on a topology grid.
#[test]
fn plan_lowering_is_op_for_op_identical_to_legacy_recording() {
    for library in Library::ALL {
        for (nodes, ppn) in [(2, 3), (3, 3), (4, 3), (5, 2)] {
            let topo = Topology::new(nodes, ppn);
            let profile = library.profile();
            let bytes = 64;
            let root = topo.world_size() - 1;
            let cases: Vec<(CollectiveShape, pip_mcoll::netsim::trace::Trace)> = vec![
                (
                    shape(CollectiveKind::Allgather, bytes, 0),
                    dispatch::record_allgather(&profile, topo, bytes),
                ),
                (
                    shape(CollectiveKind::Scatter, bytes, root),
                    dispatch::record_scatter(&profile, topo, bytes, root),
                ),
                (
                    shape(CollectiveKind::Bcast, bytes, root),
                    dispatch::record_bcast(&profile, topo, bytes, root),
                ),
                (
                    shape(CollectiveKind::Gather, bytes, root),
                    dispatch::record_gather(&profile, topo, bytes, root),
                ),
                (
                    shape(CollectiveKind::Allreduce, bytes, 0),
                    dispatch::record_allreduce(&profile, topo, bytes),
                ),
                (
                    shape(CollectiveKind::Alltoall, bytes, 0),
                    dispatch::record_alltoall(&profile, topo, bytes),
                ),
                (
                    shape(CollectiveKind::Barrier, 0, 0),
                    dispatch::record_barrier(&profile, topo),
                ),
            ];
            for (case, legacy) in cases {
                let plan = compile_cluster(&profile, topo, &case, Fidelity::Schedule);
                plan.validate().unwrap_or_else(|e| {
                    panic!("{} {:?} plan invalid: {e}", library.name(), case.kind)
                });
                let lowered = plan.to_trace(1);
                assert_eq!(
                    lowered,
                    legacy,
                    "{} {:?} on {nodes}x{ppn}: lowering diverges from legacy recording",
                    library.name(),
                    case.kind
                );
            }
        }
    }
}

/// Exec-fidelity plans carry the same schedule as schedule-fidelity ones —
/// the extra passes and payload resolution must not perturb the op stream.
#[test]
fn exec_and_schedule_fidelity_agree_on_the_schedule() {
    let topo = Topology::new(3, 2);
    for library in [Library::PipMColl, Library::OpenMpi, Library::PipMpich] {
        let profile = library.profile();
        for kind in [
            CollectiveKind::Allgather,
            CollectiveKind::Allreduce,
            CollectiveKind::Alltoall,
        ] {
            let case = shape(kind, 24, 0);
            let schedule = compile_cluster(&profile, topo, &case, Fidelity::Schedule);
            let exec = compile_cluster(&profile, topo, &case, Fidelity::Exec);
            assert_eq!(
                exec.to_trace(1),
                schedule.to_trace(1),
                "{} {kind:?}: fidelities disagree on the schedule",
                library.name()
            );
        }
    }
}

/// The folded replay is pinned against the full replay on every collective
/// × library × topology of the lowering grid: identical makespans, per-rank
/// finish times and statistics whether or not the schedule actually folds
/// (unfoldable schedules take the fallback path inside `run_folded`).  The
/// plan-level symmetry analysis and the probe-based folded compilation must
/// also agree with each other and with the full lowering.
#[test]
fn folded_replay_matches_full_replay_for_every_collective_and_library() {
    use pip_mcoll::collectives::plan::symmetry::{folded_trace, PlanSymmetry};
    use pip_mcoll::model::plan::compile_folded;
    use pip_mcoll::netsim::{SimEngine, SimParams};

    let engine = SimEngine::new(SimParams::default());
    let mut folded_cases = 0usize;
    for library in Library::ALL {
        for (nodes, ppn) in [(2, 3), (3, 3), (4, 3), (5, 2), (8, 2)] {
            let topo = Topology::new(nodes, ppn);
            let profile = library.profile();
            let bytes = 64;
            let root = topo.world_size() - 1;
            let cases = [
                shape(CollectiveKind::Allgather, bytes, 0),
                shape(CollectiveKind::Scatter, bytes, root),
                shape(CollectiveKind::Bcast, bytes, root),
                shape(CollectiveKind::Gather, bytes, root),
                shape(CollectiveKind::Allreduce, bytes, 0),
                shape(CollectiveKind::Alltoall, bytes, 0),
                shape(CollectiveKind::Barrier, 0, 0),
            ];
            for case in cases {
                let ctx = format!("{} {:?} on {nodes}x{ppn}", library.name(), case.kind);
                let plan = compile_cluster(&profile, topo, &case, Fidelity::Schedule);
                let trace = plan.to_trace(1);

                // Replay differential: folded == full, bit for bit where
                // the quantities are order-independent.
                let full = engine
                    .run(&trace)
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                let folded = engine
                    .run_folded(&trace)
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                assert_eq!(folded.makespan, full.makespan, "{ctx}: makespan");
                assert_eq!(folded.rank_finish, full.rank_finish, "{ctx}: rank_finish");
                assert_eq!(
                    folded.stats.internode_messages, full.stats.internode_messages,
                    "{ctx}: internode_messages"
                );
                assert_eq!(
                    folded.stats.internode_bytes, full.stats.internode_bytes,
                    "{ctx}: internode_bytes"
                );
                assert_eq!(
                    folded.stats.intranode_messages, full.stats.intranode_messages,
                    "{ctx}: intranode_messages"
                );
                assert_eq!(
                    folded.stats.barrier_episodes, full.stats.barrier_episodes,
                    "{ctx}: barrier_episodes"
                );

                // Analysis consistency: plan-level symmetry, probe-based
                // folded compilation, and the folded lowering must agree.
                let symmetry = PlanSymmetry::analyze(&plan);
                let probed = compile_folded(&profile, topo, &case, 1);
                assert_eq!(
                    probed.is_some(),
                    symmetry.folds(),
                    "{ctx}: probe-based compile disagrees with full analysis"
                );
                if let Some(probed) = probed {
                    folded_cases += 1;
                    assert_eq!(
                        probed.expand(),
                        trace,
                        "{ctx}: folded compile expands to a different trace"
                    );
                    let lowered = folded_trace(&plan, 1).expect("analysis says it folds");
                    assert_eq!(lowered.expand(), trace, "{ctx}: folded lowering diverges");
                }
            }
        }
    }
    // The pin is only meaningful if a healthy share of the grid folds.
    assert!(
        folded_cases >= 40,
        "only {folded_cases} folded cases across the grid"
    );
}

fn shape(kind: CollectiveKind, block: usize, root: usize) -> CollectiveShape {
    CollectiveShape {
        kind,
        block,
        root,
        elem_size: 1,
        reduce: None,
        layout: None,
        compress: None,
    }
}
