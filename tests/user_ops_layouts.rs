//! Differential harness for user-defined operators (`MPI_Op_create`) and
//! derived datatypes (`MPI_Type_vector` layouts).
//!
//! User operators are exercised with **seeded closures** the library cannot
//! possibly special-case: `x ⊕ y = x.wrapping_add(y).wrapping_add(c)` for a
//! per-test constant `c`.  The operator is associative and commutative —
//! `(x ⊕ y) ⊕ z = x + y + z + 2c = x ⊕ (y ⊕ z)` — yet its result is exactly
//! checkable in closed form: reducing `n` contributions yields
//! `Σ values + (n − 1)·c`, so a wrong combination *count* (an operator
//! applied once too often or too rarely anywhere in the tree) shifts the
//! result by a multiple of `c` and is caught, not just a wrong subset.
//!
//! Strided allreduce pins the layout contract: only the selected elements
//! are reduced, gap elements survive untouched, and the result matches the
//! sequential oracle applied to the packed view.  Both surfaces run through
//! all three entry styles (blocking, `i*`, `*_init`) for every library ×
//! topology, and a proptest pins the pack/unpack round trip itself —
//! including non-power-of-two counts and the `stride == blocklen`
//! (contiguous) edge.

use proptest::prelude::*;

use pip_mcoll::collectives::oracle;
use pip_mcoll::core::prelude::*;

const TOPOLOGIES: [(usize, usize); 5] = [(1, 1), (1, 4), (2, 3), (3, 3), (5, 2)];

/// Deterministic per-rank u64 payload, varied per round.
fn payload_u64(rank: usize, len: usize, round: usize) -> Vec<u64> {
    (0..len)
        .map(|i| {
            let x = (rank as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64)
                .wrapping_add((round as u64) << 32);
            x ^ (x >> 29)
        })
        .collect()
}

/// The seeded user operator: `acc ⊕ other = acc + other + c` (wrapping).
fn seeded_op(c: u64) -> Op {
    Op::of_typed::<u64>(move |x, y| x.wrapping_add(y).wrapping_add(c))
}

/// Closed form of reducing one element position across `ranks` with the
/// seeded operator: `Σ values + (n − 1)·c`.
fn seeded_fold(values: impl IntoIterator<Item = u64>, c: u64) -> u64 {
    let mut n = 0u64;
    let mut sum = 0u64;
    for v in values {
        n += 1;
        sum = sum.wrapping_add(v);
    }
    sum.wrapping_add(c.wrapping_mul(n.saturating_sub(1)))
}

/// Expected allreduce of the seeded operator over every rank's payload.
fn expected_allreduce(world: usize, len: usize, round: usize, c: u64) -> Vec<u64> {
    (0..len)
        .map(|i| seeded_fold((0..world).map(|r| payload_u64(r, len, round)[i]), c))
        .collect()
}

/// Expected inclusive scan (per rank) of the seeded operator.
fn expected_scan(world: usize, len: usize, round: usize, c: u64) -> Vec<Vec<u64>> {
    (0..world)
        .map(|upto| {
            (0..len)
                .map(|i| seeded_fold((0..=upto).map(|r| payload_u64(r, len, round)[i]), c))
                .collect()
        })
        .collect()
}

const BLOCK: usize = 6;
const SEED_C: u64 = 0x0123_4567_89ab_cdef;

/// Blocking entry style: `allreduce_op`, `reduce_op` and `scan_op` with the
/// seeded operator match the closed form for every library × topology.
#[test]
fn blocking_user_operator_matches_closed_form_everywhere() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let op = seeded_op(SEED_C);
            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let mut all = payload_u64(rank, BLOCK, 0);
                comm.allreduce_op(&mut all, &op);
                let reduced = comm.reduce_op(&payload_u64(rank, BLOCK, 1), &op, 0);
                let mut prefix = payload_u64(rank, BLOCK, 2);
                comm.scan_op(&mut prefix, &op);
                (all, reduced, prefix)
            })
            .unwrap();
            let want_all = expected_allreduce(world, BLOCK, 0, SEED_C);
            let want_red = expected_allreduce(world, BLOCK, 1, SEED_C);
            let want_scan = expected_scan(world, BLOCK, 2, SEED_C);
            for (rank, (all, reduced, prefix)) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                assert_eq!(all, &want_all, "allreduce_op {ctx}");
                if rank == 0 {
                    assert_eq!(reduced.as_ref().unwrap(), &want_red, "reduce_op {ctx}");
                } else {
                    assert!(reduced.is_none(), "reduce_op off-root {ctx}");
                }
                assert_eq!(prefix, &want_scan[rank], "scan_op {ctx}");
            }
        }
    }
}

/// Non-blocking entry style: two seeded requests submitted together and
/// waited in reverse order still match the closed form.
#[test]
fn nonblocking_user_operator_matches_closed_form_everywhere() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let op = seeded_op(SEED_C);
            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let r_all = comm.iallreduce_op(&payload_u64(rank, BLOCK, 0), &op);
                let r_scan = comm.iscan_op(&payload_u64(rank, BLOCK, 2), &op);
                let prefix = r_scan.wait();
                let all = r_all.wait();
                (all, prefix)
            })
            .unwrap();
            let want_all = expected_allreduce(world, BLOCK, 0, SEED_C);
            let want_scan = expected_scan(world, BLOCK, 2, SEED_C);
            for (rank, (all, prefix)) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                assert_eq!(all, &want_all, "iallreduce_op {ctx}");
                assert_eq!(prefix, &want_scan[rank], "iscan_op {ctx}");
            }
        }
    }
}

/// Persistent entry style: repeated starts with the pinned input yield the
/// closed form every round, and the starts never recompile.
#[test]
fn persistent_user_operator_matches_closed_form_and_never_recompiles() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let op = seeded_op(SEED_C);
            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let mut handle = comm.allreduce_op_init(&payload_u64(rank, BLOCK, 0), &op);
                let (_, misses_after_init) = comm.plan_stats();
                let mut rounds = Vec::new();
                for round in 0..3 {
                    if round > 0 {
                        // The in/out buffer holds the previous result;
                        // re-pin the input, as MPI applications do.
                        handle.write_send(&payload_u64(rank, BLOCK, 0));
                    }
                    handle.start();
                    rounds.push(handle.wait());
                }
                let (_, misses_after_rounds) = comm.plan_stats();
                assert_eq!(
                    misses_after_init, misses_after_rounds,
                    "persistent user-operator starts must never recompile"
                );
                rounds
            })
            .unwrap();
            let want = expected_allreduce(world, BLOCK, 0, SEED_C);
            for (rank, rounds) in results.iter().enumerate() {
                for (round, got) in rounds.iter().enumerate() {
                    assert_eq!(
                        got,
                        &want,
                        "{} on {nodes}x{ppn} rank {rank} round {round}",
                        library.name()
                    );
                }
            }
        }
    }
}

/// Two *distinct* seeded operators used back to back in one world: if their
/// plans aliased (the pre-fix hole — equal element width, equal shape), the
/// second collective would run the first closure's plan.  With different
/// constants the closed forms differ at every element, so aliasing is
/// observable, not silent.
#[test]
fn distinct_seeded_operators_in_one_world_never_cross_results() {
    const C1: u64 = 1_000_003;
    const C2: u64 = 7_777_777;
    for library in Library::ALL {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let op1 = seeded_op(C1);
        let op2 = seeded_op(C2);
        let results = World::run_with_profile(topo, library.profile(), |comm| {
            let rank = comm.rank();
            let mut first = payload_u64(rank, BLOCK, 0);
            comm.allreduce_op(&mut first, &op1);
            let mut second = payload_u64(rank, BLOCK, 0);
            comm.allreduce_op(&mut second, &op2);
            // Same shape again with op1: must be a cache hit *of op1's
            // plan*, not op2's.
            let mut third = payload_u64(rank, BLOCK, 0);
            comm.allreduce_op(&mut third, &op1);
            (first, second, third)
        })
        .unwrap();
        let want1 = expected_allreduce(world, BLOCK, 0, C1);
        let want2 = expected_allreduce(world, BLOCK, 0, C2);
        assert_ne!(want1, want2, "seeds must separate the closed forms");
        for (rank, (first, second, third)) in results.iter().enumerate() {
            let ctx = format!("{} rank {rank}", library.name());
            assert_eq!(first, &want1, "op1 {ctx}");
            assert_eq!(second, &want2, "op2 {ctx}");
            assert_eq!(third, &want1, "op1 replay {ctx}");
        }
    }
}

// ---------------------------------------------------------------------
// Strided (derived-datatype) allreduce
// ---------------------------------------------------------------------

/// The column-like layout the strided tests use: 3 blocks of 2 elements
/// with stride 5 → extent 12, packed 6.
fn strided_layout() -> Layout {
    Layout::vector(3, 2, 5)
}

/// Expected strided allreduce: the packed positions hold the oracle result,
/// the gaps hold the rank's own submitted values.
fn expected_strided(world: usize, rank: usize, layout: Layout, round: usize) -> Vec<u64> {
    let extent = layout.extent();
    let contributions: Vec<Vec<u64>> = (0..world)
        .map(|r| {
            let full = payload_u64(r, extent, round);
            selected_indices(layout).map(|i| full[i]).collect()
        })
        .collect();
    let reduced = oracle::allreduce_t::<u64>(&contributions, ReduceOp::Sum);
    let mut out = payload_u64(rank, extent, round);
    for (slot, value) in selected_indices(layout).zip(reduced) {
        out[slot] = value;
    }
    out
}

/// Iterator over the element indices a layout selects.
fn selected_indices(layout: Layout) -> impl Iterator<Item = usize> {
    let (count, blocklen, stride) = (layout.count, layout.blocklen, layout.stride);
    (0..count).flat_map(move |b| (0..blocklen).map(move |i| b * stride + i))
}

/// Strided allreduce through all three entry styles: packed positions match
/// the oracle, gap elements survive untouched.
#[test]
fn strided_allreduce_matches_oracle_through_all_entry_styles() {
    let layout = strided_layout();
    for library in Library::ALL {
        for (nodes, ppn) in [(1, 4), (3, 3)] {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                // Blocking, in place.
                let mut blocking = payload_u64(rank, layout.extent(), 0);
                comm.allreduce_strided(&mut blocking, layout, ReduceOp::Sum);
                // Non-blocking.
                let nonblocking = comm
                    .iallreduce_strided(
                        &payload_u64(rank, layout.extent(), 1),
                        layout,
                        ReduceOp::Sum,
                    )
                    .wait();
                // Persistent, two starts of the pinned input.
                let mut handle = comm.allreduce_strided_init(
                    &payload_u64(rank, layout.extent(), 2),
                    layout,
                    ReduceOp::Sum,
                );
                handle.start();
                let persistent_a = handle.wait();
                handle.write_send(&payload_u64(rank, layout.extent(), 2));
                handle.start();
                let persistent_b = handle.wait();
                (blocking, nonblocking, persistent_a, persistent_b)
            })
            .unwrap();
            for (rank, (blocking, nonblocking, pa, pb)) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                assert_eq!(
                    blocking,
                    &expected_strided(world, rank, layout, 0),
                    "blocking {ctx}"
                );
                assert_eq!(
                    nonblocking,
                    &expected_strided(world, rank, layout, 1),
                    "non-blocking {ctx}"
                );
                let want = expected_strided(world, rank, layout, 2);
                assert_eq!(pa, &want, "persistent round 0 {ctx}");
                assert_eq!(pb, &want, "persistent round 1 {ctx}");
            }
        }
    }
}

/// The combination surface: a *user* operator over a *strided* buffer.
#[test]
fn strided_allreduce_with_user_operator_matches_closed_form() {
    let layout = strided_layout();
    for library in Library::ALL {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let op = seeded_op(SEED_C);
        let results = World::run_with_profile(topo, library.profile(), |comm| {
            let rank = comm.rank();
            let mut buf = payload_u64(rank, layout.extent(), 0);
            comm.allreduce_strided_op(&mut buf, layout, &op);
            buf
        })
        .unwrap();
        let extent = layout.extent();
        for (rank, got) in results.iter().enumerate() {
            let mut want = payload_u64(rank, extent, 0);
            for slot in selected_indices(layout) {
                want[slot] =
                    seeded_fold((0..world).map(|r| payload_u64(r, extent, 0)[slot]), SEED_C);
            }
            assert_eq!(got, &want, "{} rank {rank}", library.name());
        }
    }
}

/// Strided point-to-point: a column exchanged via `sendrecv_strided`
/// arrives in the peer's column positions with gaps untouched.
#[test]
fn strided_sendrecv_scatters_into_the_selected_positions() {
    let layout = strided_layout();
    let topo = Topology::new(1, 2);
    let results = World::run_with_profile(topo, Library::PipMColl.profile(), |comm| {
        let rank = comm.rank();
        let peer = 1 - rank;
        let send = payload_u64(rank, layout.extent(), 0);
        let mut recv = vec![u64::MAX; layout.extent()];
        comm.sendrecv_strided(peer, &send, layout, peer, layout, &mut recv, 7);
        recv
    })
    .unwrap();
    for (rank, got) in results.iter().enumerate() {
        let peer_full = payload_u64(1 - rank, layout.extent(), 0);
        for i in 0..layout.extent() {
            if selected_indices(layout).any(|s| s == i) {
                assert_eq!(got[i], peer_full[i], "rank {rank} selected {i}");
            } else {
                assert_eq!(got[i], u64::MAX, "rank {rank} gap {i} must survive");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pack/unpack round trip
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `unpack(pack(src))` restores every selected byte and preserves every
    /// gap byte — across non-power-of-two counts, blocklens and strides,
    /// including the `stride == blocklen` contiguous edge and `count == 0`.
    #[test]
    fn pack_unpack_round_trips_and_preserves_gaps(
        count in 0usize..9,
        blocklen in 1usize..6,
        extra in 0usize..4,
    ) {
        let layout = Layout::vector(count, blocklen, blocklen + extra);
        prop_assert_eq!(layout.is_contiguous(), count <= 1 || extra == 0);

        let src: Vec<u8> = (0..layout.extent()).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();
        let mut packed = Vec::new();
        layout.pack_bytes(&src, &mut packed);
        prop_assert_eq!(packed.len(), layout.packed_len());
        prop_assert_eq!(layout.packed_len(), count * blocklen);

        // Unpack into a sentinel-filled buffer: selected positions take the
        // packed bytes, gaps keep the sentinel.
        let mut out = vec![0xEEu8; layout.extent()];
        layout.unpack_bytes(&packed, &mut out);
        let mut cursor = 0;
        for block in 0..count {
            for i in 0..blocklen {
                prop_assert_eq!(out[block * (blocklen + extra) + i], packed[cursor]);
                cursor += 1;
            }
        }
        let selected: Vec<usize> = (0..count)
            .flat_map(|b| (0..blocklen).map(move |i| b * (blocklen + extra) + i))
            .collect();
        for i in 0..layout.extent() {
            if selected.contains(&i) {
                prop_assert_eq!(out[i], src[i], "selected byte {} must round-trip", i);
            } else {
                prop_assert_eq!(out[i], 0xEE, "gap byte {} must be preserved", i);
            }
        }

        // And the packed form itself is a fixed point.
        let mut repacked = Vec::new();
        layout.pack_bytes(&out, &mut repacked);
        prop_assert_eq!(repacked, packed);
    }
}
