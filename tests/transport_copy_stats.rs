//! Integration test: each functional copy engine performs exactly the copy
//! count and system-call count the paper attributes to its mechanism.
//!
//! * PiP — one plain copy, no kernel involvement (HPDC '18 / HPDC '23 §2);
//! * POSIX shared memory — double copy through a bounded staging segment
//!   (Parsons & Pai, IPDPS '14);
//! * CMA — single copy, but one `process_vm_readv`-style system call per
//!   transfer (Chakraborty et al., CLUSTER '17);
//! * XPMEM — single copy; attach syscalls and first-touch page faults are
//!   paid once per buffer and amortized by the registration cache
//!   (Hashmi et al., IPDPS '18).

use pip_mcoll::collectives::{Comm as _, ThreadComm};
use pip_mcoll::runtime::{Cluster, Fabric, Topology};
use pip_mcoll::transport::cma::{CmaEngine, MAX_BYTES_PER_SYSCALL};
use pip_mcoll::transport::pip::PipCopyEngine;
use pip_mcoll::transport::posix_shmem::{PosixShmemEngine, DEFAULT_SEGMENT_BYTES};
use pip_mcoll::transport::xpmem::XpmemEngine;
use pip_mcoll::transport::{engine_for, CopyEngine, IntranodeMechanism};

/// Payload that fits one SHMEM segment and one CMA syscall but spans
/// multiple pages, so every accounting dimension is exercised at once.
const PAYLOAD: usize = 10_000;

fn payload() -> Vec<u8> {
    (0..PAYLOAD).map(|i| (i % 251) as u8).collect()
}

const PAGE_SIZE: usize = 4096;

#[test]
fn pip_is_one_copy_zero_syscalls() {
    let mut engine = PipCopyEngine::new();
    let src = payload();
    let mut dst = vec![0u8; PAYLOAD];
    let stats = engine.copy(&src, &mut dst);
    assert_eq!(dst, src);
    assert_eq!(stats.copies, 1);
    assert_eq!(stats.syscalls, 0);
    assert_eq!(stats.page_faults, 0);
    assert_eq!(stats.staged_bytes, 0);
    assert_eq!(stats.bytes_moved, PAYLOAD);
}

#[test]
fn posix_shmem_is_a_double_copy_through_the_segment() {
    let mut engine = PosixShmemEngine::default();
    let src = payload();
    let mut dst = vec![0u8; PAYLOAD];
    let stats = engine.copy(&src, &mut dst);
    assert_eq!(dst, src);
    // One segment-sized chunk suffices, so exactly copy-in + copy-out.
    const { assert!(PAYLOAD <= DEFAULT_SEGMENT_BYTES) };
    assert_eq!(stats.copies, 2);
    assert_eq!(stats.bytes_moved, 2 * PAYLOAD);
    assert_eq!(stats.staged_bytes, PAYLOAD);
    assert_eq!(stats.syscalls, 0);
    assert_eq!(stats.page_faults, 0);
}

#[test]
fn posix_shmem_pipelines_messages_larger_than_the_segment() {
    let segment = 1024;
    let mut engine = PosixShmemEngine::with_segment_size(segment);
    let len = 3 * segment + 100; // 4 chunks
    let src = vec![7u8; len];
    let mut dst = vec![0u8; len];
    let stats = engine.copy(&src, &mut dst);
    assert_eq!(dst, src);
    assert_eq!(stats.copies, 2 * 4, "copy-in + copy-out per chunk");
    assert_eq!(stats.bytes_moved, 2 * len);
    assert_eq!(stats.staged_bytes, len);
}

#[test]
fn cma_is_one_copy_one_syscall_per_transfer() {
    let mut engine = CmaEngine::new();
    let src = payload();
    let mut dst = vec![0u8; PAYLOAD];
    let stats = engine.copy(&src, &mut dst);
    assert_eq!(dst, src);
    assert_eq!(stats.copies, 1);
    assert_eq!(stats.syscalls, 1);
    assert_eq!(stats.bytes_moved, PAYLOAD);
    assert_eq!(stats.staged_bytes, 0);
    assert_eq!(stats.page_faults, 0);

    // Each further transfer pays its own kernel crossing: the per-message
    // overhead the paper's introduction attributes to kernel-assisted copies.
    for _ in 0..9 {
        engine.copy(&src, &mut dst);
    }
    assert_eq!(engine.totals().syscalls, 10);
    assert_eq!(engine.totals().copies, 10);
}

#[test]
fn cma_splits_giant_transfers_across_syscalls() {
    let len = MAX_BYTES_PER_SYSCALL + 1;
    let src = vec![9u8; len];
    let mut dst = vec![0u8; len];
    let mut engine = CmaEngine::new();
    let stats = engine.copy(&src, &mut dst);
    assert_eq!(dst, src);
    assert_eq!(stats.syscalls, 2);
    assert_eq!(stats.copies, 2);
    assert_eq!(stats.bytes_moved, len);
}

#[test]
fn xpmem_pays_attach_once_and_faults_once_per_page() {
    let mut engine = XpmemEngine::new();
    let src = payload();
    let mut dst = vec![0u8; PAYLOAD];
    let pages = PAYLOAD.div_ceil(PAGE_SIZE);

    let cold = engine.copy_segment(42, &src, &mut dst);
    assert_eq!(dst, src);
    assert_eq!(cold.copies, 1);
    assert_eq!(cold.syscalls, 2, "xpmem_get + xpmem_attach on first use");
    assert_eq!(cold.page_faults, pages);
    assert_eq!(cold.bytes_moved, PAYLOAD);

    // Steady state — what OSU-style benchmark loops observe: the
    // registration cache absorbs both the attach and the page faults.
    let warm = engine.copy_segment(42, &src, &mut dst);
    assert_eq!(warm.copies, 1);
    assert_eq!(warm.syscalls, 0);
    assert_eq!(warm.page_faults, 0);

    // A different buffer starts cold again.
    let other = engine.copy_segment(43, &src, &mut dst);
    assert_eq!(other.syscalls, 2);
    assert_eq!(other.page_faults, pages);
}

// ---------------------------------------------------------------------------
// Fabric payload accounting: a message through the thread runtime is at most
// ONE transport-level copy.
// ---------------------------------------------------------------------------

/// `ThreadComm::send` borrows the caller's bytes, so exactly one copy (into
/// the fabric payload) is allowed; the allocation must then travel to the
/// receiver untouched.
#[test]
fn thread_comm_send_is_exactly_one_copy() {
    let topo = Topology::new(1, 2);
    let fabric = Fabric::new(topo.world_size());
    let sends = 16usize;
    Cluster::launch_with_fabric(topo, fabric.clone(), |ctx| {
        let comm = ThreadComm::new(ctx);
        if comm.rank() == 0 {
            for round in 0..sends as u64 {
                comm.send(1, round, &[7u8; PAYLOAD]);
            }
        } else {
            for round in 0..sends as u64 {
                assert_eq!(comm.recv(0, round, PAYLOAD), vec![7u8; PAYLOAD]);
            }
        }
    })
    .unwrap();
    let stats = fabric.stats();
    assert_eq!(stats.sends, sends);
    assert_eq!(stats.payload_copies, sends, "one copy per borrowed send");
    assert_eq!(stats.bytes_copied, sends * PAYLOAD);
}

/// `Comm::send_owned` hands an owned buffer to the fabric: zero
/// transport-level copies end to end.
#[test]
fn owned_sends_cross_the_fabric_with_zero_copies() {
    let topo = Topology::new(1, 2);
    let fabric = Fabric::new(topo.world_size());
    let sends = 16usize;
    Cluster::launch_with_fabric(topo, fabric.clone(), |ctx| {
        let comm = ThreadComm::new(ctx);
        if comm.rank() == 0 {
            for round in 0..sends as u64 {
                comm.send_owned(1, round, vec![9u8; PAYLOAD]);
            }
        } else {
            for round in 0..sends as u64 {
                assert_eq!(comm.recv(0, round, PAYLOAD), vec![9u8; PAYLOAD]);
            }
        }
    })
    .unwrap();
    let stats = fabric.stats();
    assert_eq!(stats.sends, sends);
    assert_eq!(
        stats.payload_copies, 0,
        "owned payloads must move, not copy"
    );
    assert_eq!(stats.bytes_copied, 0);
}

/// Relaying a received message by forwarding its `Payload` handle
/// (`TaskCtx::send_payload`) shares the original allocation: zero
/// additional accounted copies, even when one buffer fans out to several
/// destinations.  This pins the fix for the old borrow-and-recopy relay
/// path (`send_bytes` on a payload the rank already owned).
#[test]
fn forwarded_payloads_cost_zero_extra_copies() {
    let topo = Topology::new(1, 3);
    let fabric = Fabric::new(topo.world_size());
    Cluster::launch_with_fabric(topo, fabric.clone(), |ctx| match ctx.rank() {
        0 => {
            // The only allocation in the whole relay: the original owned send.
            ctx.send(1, 1, vec![7u8; PAYLOAD]).unwrap();
        }
        1 => {
            let msg = ctx.recv(0, 1).unwrap();
            // Fan the received payload out twice without copying it.
            ctx.send_payload(2, 2, msg.payload.clone()).unwrap();
            ctx.send_payload(2, 3, msg.payload).unwrap();
        }
        _ => {
            for tag in [2u64, 3] {
                let msg = ctx.recv(1, tag).unwrap();
                assert_eq!(msg.payload.as_slice(), &[7u8; PAYLOAD]);
            }
        }
    })
    .unwrap();
    let stats = fabric.stats();
    assert_eq!(stats.sends, 3);
    assert_eq!(
        stats.payload_copies, 0,
        "forwarded payloads must share the allocation, not copy it"
    );
    assert_eq!(stats.bytes_copied, 0);
}

/// The zero-copy shared-buffer path (`send_from_shared`) reads the shared
/// region once and moves that allocation into the fabric — no second copy.
#[test]
fn send_from_shared_adds_no_fabric_copy() {
    let topo = Topology::new(2, 1);
    let fabric = Fabric::new(topo.world_size());
    Cluster::launch_with_fabric(topo, fabric.clone(), |ctx| {
        let comm = ThreadComm::new(ctx);
        if comm.rank() == 0 {
            comm.shared_alloc("src", PAYLOAD);
            comm.shared_write(0, "src", 0, &vec![3u8; PAYLOAD]);
            comm.send_from_shared(0, "src", 0, PAYLOAD, 1, 5);
        } else {
            assert_eq!(comm.recv(0, 5, PAYLOAD), vec![3u8; PAYLOAD]);
        }
    })
    .unwrap();
    assert_eq!(fabric.stats().payload_copies, 0);
}

#[test]
fn engine_factory_matches_mechanism_attribution() {
    let src = payload();
    for mechanism in IntranodeMechanism::ALL {
        let mut engine = engine_for(mechanism);
        assert_eq!(engine.mechanism(), mechanism);

        let mut dst = vec![0u8; PAYLOAD];
        // Warm the engine once so XPMEM's one-time attach does not obscure
        // the steady-state accounting the paper's tables describe.
        engine.copy(&src, &mut dst);
        let mut dst = vec![0u8; PAYLOAD];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(dst, src, "{mechanism:?} corrupted the payload");

        assert_eq!(
            stats.copies,
            mechanism.copies_per_transfer(),
            "{mechanism:?} copy count"
        );
        assert_eq!(
            stats.bytes_moved,
            PAYLOAD * mechanism.copies_per_transfer(),
            "{mechanism:?} bytes moved"
        );
        let expected_syscalls = if mechanism.syscall_per_transfer() {
            1
        } else {
            0
        };
        assert_eq!(stats.syscalls, expected_syscalls, "{mechanism:?} syscalls");

        // The cost model the simulator charges must agree with what the
        // functional engine just did.
        let cost = engine.cost_model();
        assert_eq!(cost.copies, stats.copies, "{mechanism:?} cost-model copies");
        assert_eq!(
            cost.syscalls_per_transfer, stats.syscalls,
            "{mechanism:?} cost-model syscalls"
        );
    }
}
