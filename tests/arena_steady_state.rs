//! Integration test: the execute plane's steady state is allocation-free.
//!
//! Persistent collectives (`*_init` → repeated `start()`) are the paper's
//! repeated-small-collective workload in API form.  With the plan cache the
//! repeats never recompile; with the buffer arena they must also never
//! allocate: every scratch buffer the second and later invocations need was
//! released into the communicator's arena by the first (value slots and
//! output writes locally, sent payloads replaced by the peers' symmetric
//! receives).  The pin is on the arena's miss counter — it stops moving
//! after the first invocation of each shape, on every rank.

use pip_mcoll::core::datatype::ReduceOp;
use pip_mcoll::core::world::World;
use pip_mcoll::model::Library;

/// Arena misses must stop after the first invocation of each persistent
/// shape; the collectives must stay correct across repeats with refreshed
/// inputs while not allocating.
fn assert_persistent_starts_are_allocation_free(library: Library, nodes: usize, ppn: usize) {
    let starts = 8usize;
    let results = World::builder()
        .nodes(nodes)
        .ppn(ppn)
        .library(library)
        .run(|comm| {
            let world = comm.size();
            let rank = comm.rank() as i64;
            let count = 16usize;

            let mut allreduce = comm.allreduce_init(&vec![0i64; count], ReduceOp::Sum);
            let rs_zero = vec![0i64; count * world];
            let mut reduce_scatter = comm.reduce_scatter_init(&rs_zero, count, ReduceOp::Sum);

            let mut misses_per_start = Vec::new();
            for round in 0..starts as i64 {
                // Refresh both inputs so every start moves distinct bytes.
                allreduce.write_send(&vec![rank + round; count]);
                allreduce.start();
                let reduced = allreduce.wait();
                let rank_sum: i64 = (0..world as i64).sum();
                assert_eq!(
                    reduced,
                    vec![rank_sum + world as i64 * round; count],
                    "round {round} allreduce wrong under {library:?}"
                );

                let rs_input: Vec<i64> = (0..world)
                    .flat_map(|block| vec![rank + block as i64 + round; count])
                    .collect();
                reduce_scatter.write_send(&rs_input);
                reduce_scatter.start();
                let block = reduce_scatter.wait();
                let expected = rank_sum + world as i64 * (rank + round);
                assert_eq!(
                    block,
                    vec![expected; count],
                    "round {round} reduce_scatter wrong under {library:?}"
                );

                misses_per_start.push(comm.arena_stats().misses);
            }
            (misses_per_start, comm.arena_stats())
        })
        .unwrap();

    for (rank, (misses_per_start, stats)) in results.iter().enumerate() {
        let after_first = misses_per_start[0];
        assert!(
            after_first > 0,
            "rank {rank}: the first invocation must fill the pool"
        );
        assert_eq!(
            misses_per_start[1..],
            vec![after_first; starts - 1][..],
            "rank {rank} under {library:?}: persistent starts allocated after the first \
             invocation (misses per start: {misses_per_start:?})"
        );
        assert!(
            stats.hits > stats.misses,
            "rank {rank}: the steady state must be dominated by pool hits ({stats:?})"
        );
    }
}

#[test]
fn pip_mcoll_persistent_starts_perform_zero_arena_misses_after_the_first() {
    assert_persistent_starts_are_allocation_free(Library::PipMColl, 2, 4);
}

#[test]
fn open_mpi_persistent_starts_perform_zero_arena_misses_after_the_first() {
    assert_persistent_starts_are_allocation_free(Library::OpenMpi, 2, 4);
}

/// The blocking dispatch path shares the same arena: back-to-back blocking
/// allreduces on a communicator stop allocating once the first call of the
/// shape has filled the pool.
#[test]
fn repeated_blocking_collectives_reuse_the_arena() {
    let results = World::builder()
        .nodes(2)
        .ppn(2)
        .library(Library::PipMColl)
        .run(|comm| {
            let mut misses_per_call = Vec::new();
            for round in 0..6i64 {
                let mut buf = [comm.rank() as i64 + round; 8];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                assert_eq!(buf[0], 6 + 4 * round);
                misses_per_call.push(comm.arena_stats().misses);
            }
            misses_per_call
        })
        .unwrap();
    for (rank, misses_per_call) in results.iter().enumerate() {
        assert_eq!(
            misses_per_call[1..],
            vec![misses_per_call[0]; 5][..],
            "rank {rank}: repeated blocking allreduces must be served from the arena \
             ({misses_per_call:?})"
        );
    }
}
