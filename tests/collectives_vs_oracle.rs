//! Cross-crate integration tests: every collective, executed for real on the
//! thread runtime through the public `Communicator` API, for every modelled
//! library, across a grid of topologies — checked against the sequential
//! oracle.

use pip_mcoll::collectives::oracle;
use pip_mcoll::core::prelude::*;

const TOPOLOGIES: [(usize, usize); 5] = [(1, 1), (1, 4), (2, 3), (3, 2), (4, 4)];

fn for_each_config(mut f: impl FnMut(Library, usize, usize)) {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            f(library, nodes, ppn);
        }
    }
}

#[test]
fn allgather_matches_oracle_everywhere() {
    for_each_config(|library, nodes, ppn| {
        let world = nodes * ppn;
        let expected: Vec<u32> = (0..world as u32).flat_map(|r| [r, r * 100]).collect();
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(library)
            .run(|comm| comm.allgather(&[comm.rank() as u32, comm.rank() as u32 * 100]))
            .unwrap();
        for r in results {
            assert_eq!(r, expected, "{} on {nodes}x{ppn}", library.name());
        }
    });
}

#[test]
fn scatter_matches_oracle_everywhere() {
    for_each_config(|library, nodes, ppn| {
        let world = nodes * ppn;
        let payload: Vec<i64> = (0..(world * 3) as i64).collect();
        let payload_ref = &payload;
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(library)
            .run(|comm| {
                let send = (comm.rank() == 0).then_some(payload_ref.as_slice());
                comm.scatter(send, 3, 0)
            })
            .unwrap();
        for (rank, block) in results.iter().enumerate() {
            let expected: Vec<i64> = (rank as i64 * 3..rank as i64 * 3 + 3).collect();
            assert_eq!(block, &expected, "{} on {nodes}x{ppn}", library.name());
        }
    });
}

#[test]
fn bcast_matches_oracle_everywhere() {
    for_each_config(|library, nodes, ppn| {
        let world = nodes * ppn;
        let root = world / 2;
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(library)
            .run(|comm| {
                let mut buf = if comm.rank() == root {
                    [13f32, -7.25, 0.5]
                } else {
                    [0.0; 3]
                };
                comm.bcast(&mut buf, root);
                buf
            })
            .unwrap();
        for buf in results {
            assert_eq!(
                buf,
                [13f32, -7.25, 0.5],
                "{} on {nodes}x{ppn}",
                library.name()
            );
        }
    });
}

#[test]
fn gather_matches_oracle_everywhere() {
    for_each_config(|library, nodes, ppn| {
        let world = nodes * ppn;
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(library)
            .run(|comm| comm.gather(&[comm.rank() as u16, 99], 0))
            .unwrap();
        let expected: Vec<u16> = (0..world as u16).flat_map(|r| [r, 99]).collect();
        assert_eq!(results[0].as_deref(), Some(expected.as_slice()));
        for other in &results[1..] {
            assert!(other.is_none());
        }
    });
}

#[test]
fn allreduce_sum_and_max_match_oracle_everywhere() {
    for_each_config(|library, nodes, ppn| {
        let world = nodes * ppn;
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(library)
            .run(|comm| {
                let mut sums = [comm.rank() as u64, 1];
                comm.allreduce(&mut sums, ReduceOp::Sum);
                let mut maxes = [comm.rank() as i32 - 5];
                comm.allreduce(&mut maxes, ReduceOp::Max);
                (sums, maxes)
            })
            .unwrap();
        let expected_sum = (world * (world - 1) / 2) as u64;
        for (sums, maxes) in results {
            assert_eq!(sums, [expected_sum, world as u64], "{}", library.name());
            assert_eq!(maxes, [world as i32 - 6], "{}", library.name());
        }
    });
}

#[test]
fn alltoall_matches_oracle_everywhere() {
    for_each_config(|library, nodes, ppn| {
        let world = nodes * ppn;
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(library)
            .run(|comm| {
                // Block j of rank i is i*1000 + j.
                let send: Vec<u32> = (0..world as u32)
                    .map(|j| comm.rank() as u32 * 1000 + j)
                    .collect();
                comm.alltoall(&send, 1)
            })
            .unwrap();
        for (rank, recv) in results.iter().enumerate() {
            let expected: Vec<u32> = (0..world as u32).map(|i| i * 1000 + rank as u32).collect();
            assert_eq!(recv, &expected, "{} on {nodes}x{ppn}", library.name());
        }
    });
}

/// Non-power-of-two worlds (9 and 10 ranks): recursive doubling cannot run
/// pure, so these force the Bruck allgather/alltoall paths and the binomial
/// fallback of every library's selection table.
const NONPOW2_TOPOLOGIES: [(usize, usize); 2] = [(3, 3), (5, 2)];

#[test]
fn allreduce_matches_oracle_on_nonpow2_topologies() {
    for library in Library::ALL {
        for (nodes, ppn) in NONPOW2_TOPOLOGIES {
            let world = nodes * ppn;
            let results = World::builder()
                .nodes(nodes)
                .ppn(ppn)
                .library(library)
                .run(|comm| {
                    // Three elements so reductions that split the payload
                    // across local ranks hit an uneven partition.
                    let rank = comm.rank() as u64;
                    let mut sums = [rank, rank * rank, 7];
                    comm.allreduce(&mut sums, ReduceOp::Sum);
                    let mut mins = [comm.rank() as i32 * -3 + 4];
                    comm.allreduce(&mut mins, ReduceOp::Min);
                    (sums, mins)
                })
                .unwrap();
            let sum: u64 = (0..world as u64).sum();
            let sq_sum: u64 = (0..world as u64).map(|r| r * r).sum();
            let min = (world as i32 - 1) * -3 + 4;
            for (sums, mins) in results {
                assert_eq!(
                    sums,
                    [sum, sq_sum, 7 * world as u64],
                    "{} allreduce sum on {nodes}x{ppn}",
                    library.name()
                );
                assert_eq!(
                    mins,
                    [min],
                    "{} allreduce min on {nodes}x{ppn}",
                    library.name()
                );
            }
        }
    }
}

#[test]
fn alltoall_matches_oracle_on_nonpow2_topologies() {
    for library in Library::ALL {
        for (nodes, ppn) in NONPOW2_TOPOLOGIES {
            let world = nodes * ppn;
            let block = 3; // multi-element blocks on an odd-sized world
            let results = World::builder()
                .nodes(nodes)
                .ppn(ppn)
                .library(library)
                .run(move |comm| {
                    let send: Vec<u16> = (0..world * block)
                        .map(|j| (comm.rank() * 10_000 + j) as u16)
                        .collect();
                    comm.alltoall(&send, block)
                })
                .unwrap();
            for (rank, recv) in results.iter().enumerate() {
                let expected: Vec<u16> = (0..world)
                    .flat_map(|sender| {
                        (0..block).map(move |e| (sender * 10_000 + rank * block + e) as u16)
                    })
                    .collect();
                assert_eq!(recv, &expected, "{} on {nodes}x{ppn}", library.name());
            }
        }
    }
}

#[test]
fn gather_matches_oracle_on_nonpow2_topologies_with_nonzero_root() {
    for library in Library::ALL {
        for (nodes, ppn) in NONPOW2_TOPOLOGIES {
            let world = nodes * ppn;
            // A root in the middle of the last node exercises the rotated
            // binomial tree rather than the rank-0 special case.
            let root = world - 2;
            let results = World::builder()
                .nodes(nodes)
                .ppn(ppn)
                .library(library)
                .run(move |comm| comm.gather(&[comm.rank() as u32, 7, 77], root))
                .unwrap();
            let expected: Vec<u32> = (0..world as u32).flat_map(|r| [r, 7, 77]).collect();
            for (rank, result) in results.iter().enumerate() {
                if rank == root {
                    assert_eq!(
                        result.as_deref(),
                        Some(expected.as_slice()),
                        "{} on {nodes}x{ppn}",
                        library.name()
                    );
                } else {
                    assert!(result.is_none(), "{} on {nodes}x{ppn}", library.name());
                }
            }
        }
    }
}

#[test]
fn bcast_matches_oracle_on_nonpow2_topologies_with_nonzero_roots() {
    for library in Library::ALL {
        for (nodes, ppn) in NONPOW2_TOPOLOGIES {
            let world = nodes * ppn;
            // Roots at the far end, mid-world (a non-leader on a middle
            // node), and rank 0 exercise the rotated binomial tree, the
            // representative selection of the hierarchical/multi-object
            // paths, and the common special case.
            for root in [world - 1, world / 2 + 1, 0] {
                let results = World::builder()
                    .nodes(nodes)
                    .ppn(ppn)
                    .library(library)
                    .run(move |comm| {
                        let mut buf = if comm.rank() == root {
                            [root as u64 * 11 + 1, 42, root as u64]
                        } else {
                            [0; 3]
                        };
                        comm.bcast(&mut buf, root);
                        buf
                    })
                    .unwrap();
                for buf in results {
                    assert_eq!(
                        buf,
                        [root as u64 * 11 + 1, 42, root as u64],
                        "{} bcast root {root} on {nodes}x{ppn}",
                        library.name()
                    );
                }
            }
        }
    }
}

#[test]
fn scatter_matches_oracle_on_nonpow2_topologies_with_nonzero_roots() {
    for library in Library::ALL {
        for (nodes, ppn) in NONPOW2_TOPOLOGIES {
            let world = nodes * ppn;
            for root in [world - 1, world / 2 + 1, 0] {
                let block = 3usize; // odd-sized blocks on an odd-sized world
                let payload: Vec<i32> = (0..(world * block) as i32).map(|v| v * 2 - 7).collect();
                let payload_ref = &payload;
                let results = World::builder()
                    .nodes(nodes)
                    .ppn(ppn)
                    .library(library)
                    .run(move |comm| {
                        let send = (comm.rank() == root).then_some(payload_ref.as_slice());
                        comm.scatter(send, block, root)
                    })
                    .unwrap();
                for (rank, got) in results.iter().enumerate() {
                    let expected = &payload[rank * block..(rank + 1) * block];
                    assert_eq!(
                        got.as_slice(),
                        expected,
                        "{} scatter root {root} on {nodes}x{ppn}",
                        library.name()
                    );
                }
            }
        }
    }
}

#[test]
fn repeated_collectives_hit_the_plan_cache() {
    // The production-traffic story: back-to-back identical collectives on
    // one communicator compile once and then run from the cache — and still
    // produce fresh, correct results every time.
    let results = World::builder()
        .nodes(2)
        .ppn(3)
        .library(Library::PipMColl)
        .run(|comm| {
            let mut gathered = Vec::new();
            for round in 0..5u32 {
                gathered = comm.allgather(&[comm.rank() as u32 + round * 100]);
            }
            let (hits, misses) = comm.plan_stats();
            (gathered, hits, misses)
        })
        .unwrap();
    for (gathered, hits, misses) in results {
        assert_eq!(gathered, vec![400, 401, 402, 403, 404, 405]);
        assert_eq!(misses, 1, "one compile for five identical calls");
        assert_eq!(hits, 4, "every repeat must hit the cache");
    }
}

#[test]
fn byte_level_collectives_match_oracle_on_random_payloads() {
    // Exercise the raw byte-level algorithms (as the dispatcher uses them)
    // on payloads from the oracle's deterministic generator.
    for library in [Library::PipMColl, Library::Mvapich2, Library::PipMpich] {
        let nodes = 3;
        let ppn = 3;
        let world = nodes * ppn;
        let block = 37; // deliberately odd
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(library)
            .run(|comm| comm.allgather(&oracle::rank_payload(comm.rank(), block)))
            .unwrap();
        for r in results {
            assert_eq!(r, expected, "{}", library.name());
        }
    }
}
