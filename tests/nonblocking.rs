//! Non-blocking and persistent collectives vs. the sequential oracle.
//!
//! Three invariants are pinned here:
//!
//! 1. **Every `i*` collective × library × topology** (including
//!    non-power-of-two worlds) equals the oracle after `wait` — with all
//!    six collectives submitted *before* any of them is waited, so six
//!    requests are interleaved-outstanding on one communicator, and with
//!    the wait order rotated per rank so completion happens out of
//!    submission order (and in a different order on every rank).
//! 2. **Every persistent `*_init`/`start` collective × library × topology**
//!    equals the oracle on repeated starts with refreshed inputs, and the
//!    repeats reuse the communicator's plan cache instead of recompiling.
//! 3. A **stress mix** of eight outstanding requests (duplicate shapes
//!    included) completes out of order against the oracle.

use pip_mcoll::collectives::oracle;
use pip_mcoll::core::prelude::*;
use pip_mcoll::core::wait_all;

const TOPOLOGIES: [(usize, usize); 5] = [(1, 1), (1, 4), (2, 3), (3, 3), (5, 2)];

/// Oracle expectations for block size `block` and root `root` with the
/// iteration-dependent payloads `payload(rank, len, round)`.
fn payload(rank: usize, len: usize, round: usize) -> Vec<u8> {
    let mut bytes = oracle::rank_payload(rank + round * 31, len);
    for b in &mut bytes {
        *b = b.wrapping_add(round as u8);
    }
    bytes
}

#[test]
fn nonblocking_collectives_match_oracle_with_interleaved_requests() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5; // odd block size to stress uneven partitions
            let root = (world - 1) / 2;

            let contributions: Vec<Vec<u8>> = (0..world).map(|r| payload(r, block, 0)).collect();
            let expected_allgather = oracle::allgather(&contributions);
            let expected_gather = oracle::gather(&contributions);
            let expected_allreduce = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
            let scatter_src = payload(root, world * block, 0);
            let expected_scatter = oracle::scatter(&scatter_src, world);
            let bcast_src = payload(root, block, 0);
            let alltoall_inputs: Vec<Vec<u8>> =
                (0..world).map(|r| payload(r, world * block, 0)).collect();
            let expected_alltoall = oracle::alltoall(&alltoall_inputs, world);

            let scatter_src_ref = &scatter_src;
            let bcast_src_ref = &bcast_src;
            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let mine = payload(rank, block, 0);
                let alltoall_in = payload(rank, world * block, 0);

                // Submit all six before completing any: six interleaved
                // outstanding requests on one communicator.
                let r_allgather = comm.iallgather(&mine);
                let r_scatter = comm.iscatter(
                    (rank == root).then_some(scatter_src_ref.as_slice()),
                    block,
                    root,
                );
                let bcast_in = if rank == root {
                    bcast_src_ref.clone()
                } else {
                    vec![0u8; block]
                };
                let r_bcast = comm.ibcast(&bcast_in, root);
                let r_gather = comm.igather(&mine, root);
                let r_allreduce = comm.iallreduce(&mine, ReduceOp::Sum);
                let r_alltoall = comm.ialltoall(&alltoall_in, block);
                assert_eq!(comm.outstanding_requests(), 6);

                // Complete out of submission order, rotated per rank so
                // different ranks wait in different orders.
                let mut outputs: [Option<Vec<u8>>; 6] = [None, None, None, None, None, None];
                let mut gathered: Option<Option<Vec<u8>>> = None;
                let mut order: Vec<usize> = (0..6).collect();
                order.rotate_left(rank % 6);
                order.reverse();
                let mut r_allgather = Some(r_allgather);
                let mut r_scatter = Some(r_scatter);
                let mut r_bcast = Some(r_bcast);
                let mut r_gather = Some(r_gather);
                let mut r_allreduce = Some(r_allreduce);
                let mut r_alltoall = Some(r_alltoall);
                for slot in order {
                    match slot {
                        0 => outputs[0] = Some(r_allgather.take().unwrap().wait()),
                        1 => outputs[1] = Some(r_scatter.take().unwrap().wait()),
                        2 => outputs[2] = Some(r_bcast.take().unwrap().wait()),
                        3 => gathered = Some(r_gather.take().unwrap().wait()),
                        4 => outputs[4] = Some(r_allreduce.take().unwrap().wait()),
                        5 => outputs[5] = Some(r_alltoall.take().unwrap().wait()),
                        _ => unreachable!(),
                    }
                }
                assert_eq!(comm.outstanding_requests(), 0);
                (outputs, gathered.unwrap())
            })
            .unwrap();

            for (rank, (outputs, gathered)) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                assert_eq!(
                    outputs[0].as_ref().unwrap(),
                    &expected_allgather,
                    "iallgather {ctx}"
                );
                assert_eq!(
                    outputs[1].as_ref().unwrap(),
                    &expected_scatter[rank],
                    "iscatter {ctx}"
                );
                assert_eq!(outputs[2].as_ref().unwrap(), &bcast_src, "ibcast {ctx}");
                assert_eq!(
                    outputs[4].as_ref().unwrap(),
                    &expected_allreduce,
                    "iallreduce {ctx}"
                );
                assert_eq!(
                    outputs[5].as_ref().unwrap(),
                    &expected_alltoall[rank],
                    "ialltoall {ctx}"
                );
                if rank == root {
                    assert_eq!(
                        gathered.as_ref().unwrap(),
                        &expected_gather,
                        "igather {ctx}"
                    );
                } else {
                    assert!(
                        gathered.is_none(),
                        "igather must yield None off-root ({ctx})"
                    );
                }
            }
        }
    }
}

#[test]
fn persistent_collectives_match_oracle_across_repeated_starts() {
    const ROUNDS: usize = 3;
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5;
            let root = (world - 1) / 2;

            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let mut allgather = comm.allgather_init(&payload(rank, block, 0));
                let mut scatter = comm.scatter_init(
                    (rank == root)
                        .then_some(payload(root, world * block, 0))
                        .as_deref(),
                    block,
                    root,
                );
                let mut bcast = comm.bcast_init(
                    &if rank == root {
                        payload(root, block, 0)
                    } else {
                        vec![0u8; block]
                    },
                    root,
                );
                let mut gather = comm.gather_init(&payload(rank, block, 0), root);
                let mut allreduce = comm.allreduce_init(&payload(rank, block, 0), ReduceOp::Sum);
                let mut alltoall = comm.alltoall_init(&payload(rank, world * block, 0), block);
                let (_, misses_after_init) = comm.plan_stats();

                let mut rounds_out = Vec::new();
                for round in 0..ROUNDS {
                    if round > 0 {
                        // Refresh the pinned inputs: the handles transmit the
                        // new bytes without recompiling anything.
                        allgather.write_send(&payload(rank, block, round));
                        if rank == root {
                            scatter.write_send(&payload(root, world * block, round));
                            bcast.write_send(&payload(root, block, round));
                        }
                        gather.write_send(&payload(rank, block, round));
                        allreduce.write_send(&payload(rank, block, round));
                        alltoall.write_send(&payload(rank, world * block, round));
                    }
                    // Start all six, then wait in reverse order.
                    allgather.start();
                    scatter.start();
                    bcast.start();
                    gather.start();
                    allreduce.start();
                    alltoall.start();
                    let a2a = alltoall.wait();
                    let ar = allreduce.wait();
                    let g = gather.wait();
                    let b = bcast.wait();
                    let s = scatter.wait();
                    let ag = allgather.wait();
                    rounds_out.push((ag, s, b, g, ar, a2a));
                }
                let (_, misses_after_rounds) = comm.plan_stats();
                assert_eq!(
                    misses_after_init, misses_after_rounds,
                    "starts must never recompile"
                );
                rounds_out
            })
            .unwrap();

            for round in 0..ROUNDS {
                let contributions: Vec<Vec<u8>> =
                    (0..world).map(|r| payload(r, block, round)).collect();
                let expected_allgather = oracle::allgather(&contributions);
                let expected_gather = oracle::gather(&contributions);
                let expected_allreduce = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
                let scatter_src = payload(root, world * block, round);
                let expected_scatter = oracle::scatter(&scatter_src, world);
                let bcast_src = payload(root, block, round);
                let alltoall_inputs: Vec<Vec<u8>> = (0..world)
                    .map(|r| payload(r, world * block, round))
                    .collect();
                let expected_alltoall = oracle::alltoall(&alltoall_inputs, world);

                for (rank, rounds_out) in results.iter().enumerate() {
                    let ctx = format!(
                        "{} on {nodes}x{ppn} rank {rank} round {round}",
                        library.name()
                    );
                    let (ag, s, b, g, ar, a2a) = &rounds_out[round];
                    assert_eq!(ag, &expected_allgather, "allgather_init {ctx}");
                    assert_eq!(s, &expected_scatter[rank], "scatter_init {ctx}");
                    assert_eq!(b, &bcast_src, "bcast_init {ctx}");
                    if rank == root {
                        assert_eq!(g.as_ref().unwrap(), &expected_gather, "gather_init {ctx}");
                    } else {
                        assert!(g.is_none(), "gather_init off-root ({ctx})");
                    }
                    assert_eq!(ar, &expected_allreduce, "allreduce_init {ctx}");
                    assert_eq!(a2a, &expected_alltoall[rank], "alltoall_init {ctx}");
                }
            }
        }
    }
}

/// Nine outstanding requests mingling the reduction family with the
/// original six collectives — `ireduce`/`ireduce_scatter`/`iscan` in flight
/// alongside iallgather/iscatter/ibcast/igather/iallreduce/ialltoall — and
/// waits in per-rank rotated order so completion happens out of submission
/// order and differently on every rank.
#[test]
fn reduction_requests_interleave_with_the_original_six() {
    for library in [Library::PipMColl, Library::OpenMpi, Library::PipMpich] {
        for (nodes, ppn) in [(2, 3), (3, 3)] {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5;
            let root = (world - 1) / 2;

            let contributions: Vec<Vec<u8>> = (0..world).map(|r| payload(r, block, 0)).collect();
            let expected_allgather = oracle::allgather(&contributions);
            let expected_gather = oracle::gather(&contributions);
            let expected_allreduce = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
            let expected_reduce = oracle::reduce(&contributions, oracle::wrapping_add_u8);
            let expected_scan = oracle::scan(&contributions, oracle::wrapping_add_u8);
            let scatter_src = payload(root, world * block, 0);
            let expected_scatter = oracle::scatter(&scatter_src, world);
            let bcast_src = payload(root, block, 0);
            let alltoall_inputs: Vec<Vec<u8>> =
                (0..world).map(|r| payload(r, world * block, 1)).collect();
            let expected_alltoall = oracle::alltoall(&alltoall_inputs, world);
            let rs_inputs: Vec<Vec<u8>> =
                (0..world).map(|r| payload(r, world * block, 2)).collect();
            let expected_rs = oracle::reduce_scatter(&rs_inputs, world, oracle::wrapping_add_u8);

            let scatter_src_ref = &scatter_src;
            let bcast_src_ref = &bcast_src;
            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let mine = payload(rank, block, 0);

                // Submit all nine before completing any.
                let r_allgather = comm.iallgather(&mine);
                let r_reduce = comm.ireduce(&mine, ReduceOp::Sum, root);
                let r_scatter = comm.iscatter(
                    (rank == root).then_some(scatter_src_ref.as_slice()),
                    block,
                    root,
                );
                let r_rs =
                    comm.ireduce_scatter(&payload(rank, world * block, 2), block, ReduceOp::Sum);
                let bcast_in = if rank == root {
                    bcast_src_ref.clone()
                } else {
                    vec![0u8; block]
                };
                let r_bcast = comm.ibcast(&bcast_in, root);
                let r_scan = comm.iscan(&mine, ReduceOp::Sum);
                let r_gather = comm.igather(&mine, root);
                let r_allreduce = comm.iallreduce(&mine, ReduceOp::Sum);
                let r_alltoall = comm.ialltoall(&payload(rank, world * block, 1), block);
                assert_eq!(comm.outstanding_requests(), 9);

                // Complete in per-rank rotated order.
                let mut outputs: Vec<Option<Vec<u8>>> = vec![None; 9];
                let mut gathered: Option<Option<Vec<u8>>> = None;
                let mut reduced: Option<Option<Vec<u8>>> = None;
                let mut r_allgather = Some(r_allgather);
                let mut r_reduce = Some(r_reduce);
                let mut r_scatter = Some(r_scatter);
                let mut r_rs = Some(r_rs);
                let mut r_bcast = Some(r_bcast);
                let mut r_scan = Some(r_scan);
                let mut r_gather = Some(r_gather);
                let mut r_allreduce = Some(r_allreduce);
                let mut r_alltoall = Some(r_alltoall);
                let mut order: Vec<usize> = (0..9).collect();
                order.rotate_left(rank % 9);
                for slot in order {
                    match slot {
                        0 => outputs[0] = Some(r_allgather.take().unwrap().wait()),
                        1 => reduced = Some(r_reduce.take().unwrap().wait()),
                        2 => outputs[2] = Some(r_scatter.take().unwrap().wait()),
                        3 => outputs[3] = Some(r_rs.take().unwrap().wait()),
                        4 => outputs[4] = Some(r_bcast.take().unwrap().wait()),
                        5 => outputs[5] = Some(r_scan.take().unwrap().wait()),
                        6 => gathered = Some(r_gather.take().unwrap().wait()),
                        7 => outputs[7] = Some(r_allreduce.take().unwrap().wait()),
                        8 => outputs[8] = Some(r_alltoall.take().unwrap().wait()),
                        _ => unreachable!(),
                    }
                }
                assert_eq!(comm.outstanding_requests(), 0);
                (outputs, gathered.unwrap(), reduced.unwrap())
            })
            .unwrap();

            for (rank, (outputs, gathered, reduced)) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                assert_eq!(
                    outputs[0].as_ref().unwrap(),
                    &expected_allgather,
                    "iallgather {ctx}"
                );
                assert_eq!(
                    outputs[2].as_ref().unwrap(),
                    &expected_scatter[rank],
                    "iscatter {ctx}"
                );
                assert_eq!(
                    outputs[3].as_ref().unwrap(),
                    &expected_rs[rank],
                    "ireduce_scatter {ctx}"
                );
                assert_eq!(outputs[4].as_ref().unwrap(), &bcast_src, "ibcast {ctx}");
                assert_eq!(
                    outputs[5].as_ref().unwrap(),
                    &expected_scan[rank],
                    "iscan {ctx}"
                );
                assert_eq!(
                    outputs[7].as_ref().unwrap(),
                    &expected_allreduce,
                    "iallreduce {ctx}"
                );
                assert_eq!(
                    outputs[8].as_ref().unwrap(),
                    &expected_alltoall[rank],
                    "ialltoall {ctx}"
                );
                if rank == root {
                    assert_eq!(
                        gathered.as_ref().unwrap(),
                        &expected_gather,
                        "igather {ctx}"
                    );
                    assert_eq!(reduced.as_ref().unwrap(), &expected_reduce, "ireduce {ctx}");
                } else {
                    assert!(gathered.is_none(), "igather off-root ({ctx})");
                    assert!(reduced.is_none(), "ireduce off-root ({ctx})");
                }
            }
        }
    }
}

/// Persistent reduction starts are pure cache traffic: after init, every
/// start is a plan-cache *hit* path with zero additional compiles, pinned
/// via both counters across repeated rounds.
#[test]
fn persistent_reduction_starts_never_recompile() {
    let topo = Topology::new(2, 3);
    let world = topo.world_size();
    let block = 6;
    let results = World::run_with_profile(topo, Library::PipMColl.profile(), |comm| {
        let rank = comm.rank();
        let mut rs =
            comm.reduce_scatter_init(&payload(rank, world * block, 0), block, ReduceOp::Sum);
        let mut scan = comm.scan_init(&payload(rank, block, 0), ReduceOp::Sum);
        let mut reduce = comm.reduce_init(&payload(rank, block, 0), ReduceOp::Sum, 0);
        let (hits_init, misses_init) = comm.plan_stats();
        let entries_init = comm.plan_entries();
        for round in 0..4 {
            rs.write_send(&payload(rank, world * block, round));
            scan.write_send(&payload(rank, block, round));
            reduce.write_send(&payload(rank, block, round));
            rs.start();
            scan.start();
            reduce.start();
            let _ = reduce.wait();
            let _ = scan.wait();
            let _ = rs.wait();
        }
        let (hits, misses) = comm.plan_stats();
        (
            hits_init,
            misses_init,
            entries_init,
            hits,
            misses,
            comm.plan_entries(),
        )
    })
    .unwrap();
    for (hits_init, misses_init, entries_init, hits, misses, entries) in results {
        assert_eq!(misses_init, 3, "three distinct shapes compile at init");
        assert_eq!(entries_init, 3);
        assert_eq!(hits_init, 0);
        assert_eq!(misses, misses_init, "starts must never recompile");
        assert_eq!(entries, entries_init, "starts must never add cache entries");
        assert_eq!(
            hits, hits_init,
            "persistent starts reuse the pinned plan without lookups"
        );
    }
}

/// Eight outstanding requests — duplicate shapes included — on one
/// communicator, completed in reverse submission order.
#[test]
fn interleaved_request_stress_completes_out_of_order() {
    for library in [Library::PipMColl, Library::OpenMpi, Library::PipMpich] {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let block = 7;

        let results = World::run_with_profile(topo, library.profile(), |comm| {
            let rank = comm.rank();
            // Eight requests: four allgathers of the same shape (same cached
            // plan, four live cursors), two allreduces, two bcasts.
            let allgathers: Vec<_> = (0..4)
                .map(|i| comm.iallgather(&payload(rank, block, i)))
                .collect();
            let allreduces: Vec<_> = (4..6)
                .map(|i| comm.iallreduce(&payload(rank, block, i), ReduceOp::Sum))
                .collect();
            let bcasts: Vec<_> = (6..8)
                .map(|i| {
                    comm.ibcast(
                        &if rank == 0 {
                            payload(0, block, i)
                        } else {
                            vec![0u8; block]
                        },
                        0,
                    )
                })
                .collect();
            assert_eq!(comm.outstanding_requests(), 8);
            // Reverse order: bcasts, then allreduces, then allgathers — and
            // wait_all itself walks its batch front to back.
            let bcast_out = wait_all(bcasts);
            let allreduce_out = wait_all(allreduces);
            let allgather_out = wait_all(allgathers);
            assert_eq!(comm.outstanding_requests(), 0);
            (allgather_out, allreduce_out, bcast_out)
        })
        .unwrap();

        for (rank, (allgather_out, allreduce_out, bcast_out)) in results.iter().enumerate() {
            let ctx = format!("{} rank {rank}", library.name());
            for (i, out) in allgather_out.iter().enumerate() {
                let contributions: Vec<Vec<u8>> =
                    (0..world).map(|r| payload(r, block, i)).collect();
                assert_eq!(
                    out,
                    &oracle::allgather(&contributions),
                    "stress allgather {i} {ctx}"
                );
            }
            for (slot, out) in allreduce_out.iter().enumerate() {
                let round = slot + 4;
                let contributions: Vec<Vec<u8>> =
                    (0..world).map(|r| payload(r, block, round)).collect();
                assert_eq!(
                    out,
                    &oracle::allreduce(&contributions, oracle::wrapping_add_u8),
                    "stress allreduce {round} {ctx}"
                );
            }
            for (slot, out) in bcast_out.iter().enumerate() {
                let round = slot + 6;
                assert_eq!(out, &payload(0, block, round), "stress bcast {round} {ctx}");
            }
        }
    }
}
