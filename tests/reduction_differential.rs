//! Differential property harness for the reduction family — reduce,
//! reduce_scatter, scan and exscan are pinned against the sequential oracle
//! for every library × topology (including non-power-of-two worlds and
//! blocks that do not divide into the per-node chunk partition), via all
//! four entry styles:
//!
//! 1. **blocking** (`Communicator::{reduce, reduce_scatter, scan, exscan}`),
//! 2. **non-blocking** (`i*`, submitted interleaved and waited in per-rank
//!    rotated order),
//! 3. **persistent** (`*_init` with refreshed inputs, starts never
//!    recompile),
//! 4. **lowered plan** (schedule-fidelity cluster plans lower op-for-op to
//!    the legacy per-rank recording).
//!
//! Proptest drives randomized sizes (non-power-of-two, non-divisible),
//! roots and operators — including the non-invertible Min/Max, where a
//! wrong contribution *subset* (not merely a wrong combination order) is
//! visible in the result.  A plan-cache key regression pins that distinct
//! reduction shapes never alias one cache entry.

use proptest::prelude::*;

use pip_mcoll::collectives::oracle;
use pip_mcoll::collectives::plan::Fidelity;
use pip_mcoll::collectives::CollectiveKind;
use pip_mcoll::core::prelude::*;
use pip_mcoll::model::plan::{compile_cluster, PlanCache, PlanKey};
use pip_mcoll::model::{dispatch, CollectiveShape};

const TOPOLOGIES: [(usize, usize); 5] = [(1, 1), (1, 4), (2, 3), (3, 3), (5, 2)];

/// Deterministic per-rank payload, varied per round.
fn payload(rank: usize, len: usize, round: usize) -> Vec<u8> {
    let mut bytes = oracle::rank_payload(rank + round * 31, len);
    for b in &mut bytes {
        *b = b.wrapping_add(round as u8);
    }
    bytes
}

/// The byte-level combine matching a typed `ReduceOp` over `u8` elements.
fn combine_for(op: ReduceOp) -> fn(&mut [u8], &[u8]) {
    match op {
        ReduceOp::Sum => oracle::wrapping_add_u8,
        ReduceOp::Max => oracle::max_u8,
        ReduceOp::Min => oracle::min_u8,
        ReduceOp::Prod => |acc: &mut [u8], other: &[u8]| {
            for (a, b) in acc.iter_mut().zip(other) {
                *a = a.wrapping_mul(*b);
            }
        },
    }
}

/// Expected results for every rank: (reduce@root, reduce_scatter block,
/// scan prefix, exscan prefix).
struct Expected {
    reduce: Vec<u8>,
    reduce_scatter: Vec<Vec<u8>>,
    scan: Vec<Vec<u8>>,
    exscan: Vec<Vec<u8>>,
}

fn expected(world: usize, block: usize, op: ReduceOp, round: usize) -> Expected {
    let combine = combine_for(op);
    let vectors: Vec<Vec<u8>> = (0..world)
        .map(|r| payload(r, world * block, round))
        .collect();
    let blocks: Vec<Vec<u8>> = (0..world).map(|r| payload(r, block, round)).collect();
    Expected {
        reduce: oracle::reduce(&blocks, combine),
        reduce_scatter: oracle::reduce_scatter(&vectors, world, combine),
        scan: oracle::scan(&blocks, combine),
        exscan: oracle::exscan(&blocks, combine),
    }
}

/// Run all four blocking reduction collectives on every rank and return the
/// per-rank observations.
#[allow(clippy::type_complexity)]
fn run_blocking(
    library: Library,
    nodes: usize,
    ppn: usize,
    block: usize,
    root: usize,
    op: ReduceOp,
) -> Vec<(Option<Vec<u8>>, Vec<u8>, Vec<u8>, Vec<u8>)> {
    let topo = Topology::new(nodes, ppn);
    let world = topo.world_size();
    World::run_with_profile(topo, library.profile(), |comm| {
        let rank = comm.rank();
        let reduced = comm.reduce(&payload(rank, block, 0), op, root);
        let scattered = comm.reduce_scatter(&payload(rank, world * block, 0), block, op);
        let mut prefix = payload(rank, block, 0);
        comm.scan(&mut prefix, op);
        let mut exclusive = payload(rank, block, 0);
        comm.exscan(&mut exclusive, op);
        (reduced, scattered, prefix, exclusive)
    })
    .unwrap()
}

fn check_case(library: Library, nodes: usize, ppn: usize, block: usize, root: usize, op: ReduceOp) {
    let world = nodes * ppn;
    let root = root % world;
    let want = expected(world, block, op, 0);
    let results = run_blocking(library, nodes, ppn, block, root, op);
    for (rank, (reduced, scattered, prefix, exclusive)) in results.iter().enumerate() {
        let ctx = format!(
            "{} on {nodes}x{ppn} rank {rank} block {block} root {root} {op:?}",
            library.name()
        );
        if rank == root {
            assert_eq!(reduced.as_ref().unwrap(), &want.reduce, "reduce {ctx}");
        } else {
            assert!(reduced.is_none(), "reduce off-root must be None ({ctx})");
        }
        assert_eq!(
            scattered, &want.reduce_scatter[rank],
            "reduce_scatter {ctx}"
        );
        assert_eq!(prefix, &want.scan[rank], "scan {ctx}");
        assert_eq!(exclusive, &want.exscan[rank], "exscan {ctx}");
    }
}

/// Entry style 1 — blocking, every library × topology on a fixed odd block.
#[test]
fn blocking_reduction_family_matches_oracle_everywhere() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let world = nodes * ppn;
            check_case(library, nodes, ppn, 5, (world - 1) / 2, ReduceOp::Sum);
        }
    }
}

/// Large blocks cross the reduce_scatter Ring switch point for the
/// comparators (per-rank block >= LARGE_MESSAGE_THRESHOLD) while PiP-MColl
/// stays multi-object — both must still match the oracle.
#[test]
fn large_block_reduce_scatter_crosses_the_ring_switch() {
    let (nodes, ppn) = (2, 3);
    for library in [Library::OpenMpi, Library::PipMpich, Library::PipMColl] {
        let block = pip_mcoll::model::selection::LARGE_MESSAGE_THRESHOLD;
        let world = nodes * ppn;
        assert_eq!(
            library.profile().selection.reduce_scatter_for(block),
            if library == Library::PipMColl {
                pip_mcoll::model::ReduceScatterAlgo::MultiObject
            } else {
                pip_mcoll::model::ReduceScatterAlgo::Ring
            }
        );
        let topo = Topology::new(nodes, ppn);
        let want = expected(world, block, ReduceOp::Sum, 0);
        let results = World::run_with_profile(topo, library.profile(), |comm| {
            comm.reduce_scatter(
                &payload(comm.rank(), world * block, 0),
                block,
                ReduceOp::Sum,
            )
        })
        .unwrap();
        for (rank, scattered) in results.iter().enumerate() {
            assert_eq!(
                scattered,
                &want.reduce_scatter[rank],
                "{} large-block reduce_scatter rank {rank}",
                library.name()
            );
        }
    }
}

/// Entry style 2 — non-blocking: all four submitted before any wait, waited
/// in per-rank rotated order, for every library × topology.
#[test]
fn nonblocking_reduction_family_matches_oracle_with_rotated_waits() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5;
            let root = (world - 1) / 2;
            let want = expected(world, block, ReduceOp::Sum, 0);

            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let r_reduce = comm.ireduce(&payload(rank, block, 0), ReduceOp::Sum, root);
                let r_rs =
                    comm.ireduce_scatter(&payload(rank, world * block, 0), block, ReduceOp::Sum);
                let r_scan = comm.iscan(&payload(rank, block, 0), ReduceOp::Sum);
                let r_exscan = comm.iexscan(&payload(rank, block, 0), ReduceOp::Sum);
                assert_eq!(comm.outstanding_requests(), 4);

                let mut reduce_out = None;
                let mut outputs: [Option<Vec<u8>>; 3] = [None, None, None];
                let mut r_reduce = Some(r_reduce);
                let mut r_rs = Some(r_rs);
                let mut r_scan = Some(r_scan);
                let mut r_exscan = Some(r_exscan);
                let mut order: Vec<usize> = (0..4).collect();
                order.rotate_left(rank % 4);
                for slot in order {
                    match slot {
                        0 => reduce_out = Some(r_reduce.take().unwrap().wait()),
                        1 => outputs[0] = Some(r_rs.take().unwrap().wait()),
                        2 => outputs[1] = Some(r_scan.take().unwrap().wait()),
                        3 => outputs[2] = Some(r_exscan.take().unwrap().wait()),
                        _ => unreachable!(),
                    }
                }
                assert_eq!(comm.outstanding_requests(), 0);
                (reduce_out.unwrap(), outputs)
            })
            .unwrap();

            for (rank, (reduced, outputs)) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                if rank == root {
                    assert_eq!(reduced.as_ref().unwrap(), &want.reduce, "ireduce {ctx}");
                } else {
                    assert!(reduced.is_none(), "ireduce off-root ({ctx})");
                }
                assert_eq!(
                    outputs[0].as_ref().unwrap(),
                    &want.reduce_scatter[rank],
                    "ireduce_scatter {ctx}"
                );
                assert_eq!(
                    outputs[1].as_ref().unwrap(),
                    &want.scan[rank],
                    "iscan {ctx}"
                );
                assert_eq!(
                    outputs[2].as_ref().unwrap(),
                    &want.exscan[rank],
                    "iexscan {ctx}"
                );
            }
        }
    }
}

/// Entry style 3 — persistent: repeated starts with refreshed inputs, and
/// the starts never recompile (plan-cache miss counter pinned), for every
/// library × topology.
#[test]
fn persistent_reduction_family_matches_oracle_across_repeated_starts() {
    const ROUNDS: usize = 3;
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5;
            let root = (world - 1) / 2;

            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let mut reduce = comm.reduce_init(&payload(rank, block, 0), ReduceOp::Sum, root);
                let mut rs = comm.reduce_scatter_init(
                    &payload(rank, world * block, 0),
                    block,
                    ReduceOp::Sum,
                );
                let mut scan = comm.scan_init(&payload(rank, block, 0), ReduceOp::Sum);
                let mut exscan = comm.exscan_init(&payload(rank, block, 0), ReduceOp::Sum);
                let (_, misses_after_init) = comm.plan_stats();

                let mut rounds_out = Vec::new();
                for round in 0..ROUNDS {
                    if round > 0 {
                        reduce.write_send(&payload(rank, block, round));
                        rs.write_send(&payload(rank, world * block, round));
                        scan.write_send(&payload(rank, block, round));
                        exscan.write_send(&payload(rank, block, round));
                    }
                    reduce.start();
                    rs.start();
                    scan.start();
                    exscan.start();
                    // Wait in reverse start order.
                    let e = exscan.wait();
                    let s = scan.wait();
                    let r = rs.wait();
                    let d = reduce.wait();
                    rounds_out.push((d, r, s, e));
                }
                let (_, misses_after_rounds) = comm.plan_stats();
                assert_eq!(
                    misses_after_init, misses_after_rounds,
                    "persistent reduction starts must never recompile"
                );
                rounds_out
            })
            .unwrap();

            for round in 0..ROUNDS {
                let want = expected(world, block, ReduceOp::Sum, round);
                for (rank, rounds_out) in results.iter().enumerate() {
                    let ctx = format!(
                        "{} on {nodes}x{ppn} rank {rank} round {round}",
                        library.name()
                    );
                    let (d, r, s, e) = &rounds_out[round];
                    if rank == root {
                        assert_eq!(d.as_ref().unwrap(), &want.reduce, "reduce_init {ctx}");
                    } else {
                        assert!(d.is_none(), "reduce_init off-root ({ctx})");
                    }
                    assert_eq!(r, &want.reduce_scatter[rank], "reduce_scatter_init {ctx}");
                    assert_eq!(s, &want.scan[rank], "scan_init {ctx}");
                    assert_eq!(e, &want.exscan[rank], "exscan_init {ctx}");
                }
            }
        }
    }
}

fn shape(kind: CollectiveKind, block: usize, root: usize) -> CollectiveShape {
    CollectiveShape {
        kind,
        block,
        root,
        elem_size: 1,
    }
}

/// Entry style 4 — lowered plans: every reduction collective's schedule-
/// fidelity cluster plan validates and lowers op-for-op to the legacy
/// per-rank recording, for every library × topology.
#[test]
fn reduction_plan_lowering_matches_legacy_recording() {
    for library in Library::ALL {
        for (nodes, ppn) in [(2, 3), (3, 3), (5, 2)] {
            let topo = Topology::new(nodes, ppn);
            let profile = library.profile();
            let bytes = 64;
            let root = topo.world_size() - 1;
            let cases: Vec<(CollectiveShape, pip_mcoll::netsim::trace::Trace)> = vec![
                (
                    shape(CollectiveKind::Reduce, bytes, root),
                    dispatch::record_reduce(&profile, topo, bytes, root),
                ),
                (
                    shape(CollectiveKind::ReduceScatter, bytes, 0),
                    dispatch::record_reduce_scatter(&profile, topo, bytes),
                ),
                (
                    shape(CollectiveKind::Scan, bytes, 0),
                    dispatch::record_scan(&profile, topo, bytes),
                ),
                (
                    shape(CollectiveKind::Exscan, bytes, 0),
                    dispatch::record_exscan(&profile, topo, bytes),
                ),
            ];
            for (case, legacy) in cases {
                let plan = compile_cluster(&profile, topo, &case, Fidelity::Schedule);
                plan.validate().unwrap_or_else(|e| {
                    panic!("{} {:?} plan invalid: {e}", library.name(), case.kind)
                });
                let lowered = plan.to_trace(1);
                assert_eq!(
                    lowered,
                    legacy,
                    "{} {:?} on {nodes}x{ppn}: lowering diverges from legacy recording",
                    library.name(),
                    case.kind
                );
            }
        }
    }
}

/// Plan-cache key regression: distinct reduction shapes (different roots,
/// reduce_scatter vs allreduce of the same size) must never collide in
/// `PlanKey` or share a cache entry.
#[test]
fn distinct_reduction_shapes_never_collide_in_the_plan_cache() {
    let profile = Library::PipMColl.profile();
    let topo = Topology::new(2, 2);
    let shapes = [
        shape(CollectiveKind::Reduce, 8, 0),
        shape(CollectiveKind::Reduce, 8, 1),
        shape(CollectiveKind::ReduceScatter, 8, 0),
        shape(CollectiveKind::Allreduce, 8, 0),
        shape(CollectiveKind::Scan, 8, 0),
        shape(CollectiveKind::Exscan, 8, 0),
    ];
    // The keys themselves are pairwise distinct...
    for (i, a) in shapes.iter().enumerate() {
        for b in &shapes[i + 1..] {
            assert_ne!(
                PlanKey::new(&profile, topo, *a),
                PlanKey::new(&profile, topo, *b),
                "{a:?} and {b:?} alias one plan key"
            );
        }
    }
    // ...and a live cache keeps one entry per shape: all compiles are
    // misses, every repeat is a hit, and the entry count never merges.
    let mut cache = PlanCache::new();
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(cache.len(), shapes.len());
    assert_eq!(cache.stats(), (0, shapes.len() as u64));
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(cache.len(), shapes.len());
    assert_eq!(cache.stats(), (shapes.len() as u64, shapes.len() as u64));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized differential check: arbitrary block sizes (including
    /// non-power-of-two and sizes that do not divide across ppn chunks),
    /// arbitrary roots, Sum plus the non-invertible Min/Max, across every
    /// library on a randomly drawn topology.
    #[test]
    fn prop_reduction_family_matches_oracle(
        topo_idx in 0usize..TOPOLOGIES.len(),
        block in 1usize..24,
        root_seed in 0usize..64,
        op_idx in 0usize..3,
    ) {
        let (nodes, ppn) = TOPOLOGIES[topo_idx];
        let op = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max][op_idx];
        for library in Library::ALL {
            check_case(library, nodes, ppn, block, root_seed, op);
        }
    }
}
