//! Differential property harness for the reduction family — reduce,
//! reduce_scatter, scan and exscan are pinned against the sequential oracle
//! for every library × topology (including non-power-of-two worlds and
//! blocks that do not divide into the per-node chunk partition), via all
//! four entry styles:
//!
//! 1. **blocking** (`Communicator::{reduce, reduce_scatter, scan, exscan}`),
//! 2. **non-blocking** (`i*`, submitted interleaved and waited in per-rank
//!    rotated order),
//! 3. **persistent** (`*_init` with refreshed inputs, starts never
//!    recompile),
//! 4. **lowered plan** (schedule-fidelity cluster plans lower op-for-op to
//!    the legacy per-rank recording).
//!
//! Proptest drives randomized sizes (non-power-of-two, non-divisible),
//! roots and operators — including the non-invertible Min/Max, where a
//! wrong contribution *subset* (not merely a wrong combination order) is
//! visible in the result.  A plan-cache key regression pins that distinct
//! reduction shapes never alias one cache entry.

use proptest::prelude::*;

use pip_mcoll::collectives::oracle;
use pip_mcoll::collectives::plan::Fidelity;
use pip_mcoll::collectives::CollectiveKind;
use pip_mcoll::core::prelude::*;
use pip_mcoll::model::plan::{compile_cluster, PlanCache, PlanKey};
use pip_mcoll::model::{dispatch, CollectiveShape};

const TOPOLOGIES: [(usize, usize); 5] = [(1, 1), (1, 4), (2, 3), (3, 3), (5, 2)];

/// Deterministic per-rank payload, varied per round.
fn payload(rank: usize, len: usize, round: usize) -> Vec<u8> {
    let mut bytes = oracle::rank_payload(rank + round * 31, len);
    for b in &mut bytes {
        *b = b.wrapping_add(round as u8);
    }
    bytes
}

/// The byte-level combine matching a typed `ReduceOp` over `u8` elements.
fn combine_for(op: ReduceOp) -> fn(&mut [u8], &[u8]) {
    match op {
        ReduceOp::Sum => oracle::wrapping_add_u8,
        ReduceOp::Max => oracle::max_u8,
        ReduceOp::Min => oracle::min_u8,
        ReduceOp::Prod => |acc: &mut [u8], other: &[u8]| {
            for (a, b) in acc.iter_mut().zip(other) {
                *a = a.wrapping_mul(*b);
            }
        },
    }
}

/// Expected results for every rank: (reduce@root, reduce_scatter block,
/// scan prefix, exscan prefix).
struct Expected {
    reduce: Vec<u8>,
    reduce_scatter: Vec<Vec<u8>>,
    scan: Vec<Vec<u8>>,
    exscan: Vec<Vec<u8>>,
}

fn expected(world: usize, block: usize, op: ReduceOp, round: usize) -> Expected {
    let combine = combine_for(op);
    let vectors: Vec<Vec<u8>> = (0..world)
        .map(|r| payload(r, world * block, round))
        .collect();
    let blocks: Vec<Vec<u8>> = (0..world).map(|r| payload(r, block, round)).collect();
    Expected {
        reduce: oracle::reduce(&blocks, combine),
        reduce_scatter: oracle::reduce_scatter(&vectors, world, combine),
        scan: oracle::scan(&blocks, combine),
        exscan: oracle::exscan(&blocks, combine),
    }
}

/// Run all four blocking reduction collectives on every rank and return the
/// per-rank observations.
#[allow(clippy::type_complexity)]
fn run_blocking(
    library: Library,
    nodes: usize,
    ppn: usize,
    block: usize,
    root: usize,
    op: ReduceOp,
) -> Vec<(Option<Vec<u8>>, Vec<u8>, Vec<u8>, Vec<u8>)> {
    let topo = Topology::new(nodes, ppn);
    let world = topo.world_size();
    World::run_with_profile(topo, library.profile(), |comm| {
        let rank = comm.rank();
        let reduced = comm.reduce(&payload(rank, block, 0), op, root);
        let scattered = comm.reduce_scatter(&payload(rank, world * block, 0), block, op);
        let mut prefix = payload(rank, block, 0);
        comm.scan(&mut prefix, op);
        let mut exclusive = payload(rank, block, 0);
        comm.exscan(&mut exclusive, op);
        (reduced, scattered, prefix, exclusive)
    })
    .unwrap()
}

fn check_case(library: Library, nodes: usize, ppn: usize, block: usize, root: usize, op: ReduceOp) {
    let world = nodes * ppn;
    let root = root % world;
    let want = expected(world, block, op, 0);
    let results = run_blocking(library, nodes, ppn, block, root, op);
    for (rank, (reduced, scattered, prefix, exclusive)) in results.iter().enumerate() {
        let ctx = format!(
            "{} on {nodes}x{ppn} rank {rank} block {block} root {root} {op:?}",
            library.name()
        );
        if rank == root {
            assert_eq!(reduced.as_ref().unwrap(), &want.reduce, "reduce {ctx}");
        } else {
            assert!(reduced.is_none(), "reduce off-root must be None ({ctx})");
        }
        assert_eq!(
            scattered, &want.reduce_scatter[rank],
            "reduce_scatter {ctx}"
        );
        assert_eq!(prefix, &want.scan[rank], "scan {ctx}");
        assert_eq!(exclusive, &want.exscan[rank], "exscan {ctx}");
    }
}

/// Entry style 1 — blocking, every library × topology on a fixed odd block.
#[test]
fn blocking_reduction_family_matches_oracle_everywhere() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let world = nodes * ppn;
            check_case(library, nodes, ppn, 5, (world - 1) / 2, ReduceOp::Sum);
        }
    }
}

/// Large blocks cross the reduce_scatter Ring switch point for the
/// comparators (per-rank block >= LARGE_MESSAGE_THRESHOLD) while PiP-MColl
/// stays multi-object — both must still match the oracle.
#[test]
fn large_block_reduce_scatter_crosses_the_ring_switch() {
    let (nodes, ppn) = (2, 3);
    for library in [Library::OpenMpi, Library::PipMpich, Library::PipMColl] {
        let block = pip_mcoll::model::selection::LARGE_MESSAGE_THRESHOLD;
        let world = nodes * ppn;
        assert_eq!(
            library.profile().selection.reduce_scatter_for(block),
            if library == Library::PipMColl {
                pip_mcoll::model::ReduceScatterAlgo::MultiObject
            } else {
                pip_mcoll::model::ReduceScatterAlgo::Ring
            }
        );
        let topo = Topology::new(nodes, ppn);
        let want = expected(world, block, ReduceOp::Sum, 0);
        let results = World::run_with_profile(topo, library.profile(), |comm| {
            comm.reduce_scatter(
                &payload(comm.rank(), world * block, 0),
                block,
                ReduceOp::Sum,
            )
        })
        .unwrap();
        for (rank, scattered) in results.iter().enumerate() {
            assert_eq!(
                scattered,
                &want.reduce_scatter[rank],
                "{} large-block reduce_scatter rank {rank}",
                library.name()
            );
        }
    }
}

/// Entry style 2 — non-blocking: all four submitted before any wait, waited
/// in per-rank rotated order, for every library × topology.
#[test]
fn nonblocking_reduction_family_matches_oracle_with_rotated_waits() {
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5;
            let root = (world - 1) / 2;
            let want = expected(world, block, ReduceOp::Sum, 0);

            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let r_reduce = comm.ireduce(&payload(rank, block, 0), ReduceOp::Sum, root);
                let r_rs =
                    comm.ireduce_scatter(&payload(rank, world * block, 0), block, ReduceOp::Sum);
                let r_scan = comm.iscan(&payload(rank, block, 0), ReduceOp::Sum);
                let r_exscan = comm.iexscan(&payload(rank, block, 0), ReduceOp::Sum);
                assert_eq!(comm.outstanding_requests(), 4);

                let mut reduce_out = None;
                let mut outputs: [Option<Vec<u8>>; 3] = [None, None, None];
                let mut r_reduce = Some(r_reduce);
                let mut r_rs = Some(r_rs);
                let mut r_scan = Some(r_scan);
                let mut r_exscan = Some(r_exscan);
                let mut order: Vec<usize> = (0..4).collect();
                order.rotate_left(rank % 4);
                for slot in order {
                    match slot {
                        0 => reduce_out = Some(r_reduce.take().unwrap().wait()),
                        1 => outputs[0] = Some(r_rs.take().unwrap().wait()),
                        2 => outputs[1] = Some(r_scan.take().unwrap().wait()),
                        3 => outputs[2] = Some(r_exscan.take().unwrap().wait()),
                        _ => unreachable!(),
                    }
                }
                assert_eq!(comm.outstanding_requests(), 0);
                (reduce_out.unwrap(), outputs)
            })
            .unwrap();

            for (rank, (reduced, outputs)) in results.iter().enumerate() {
                let ctx = format!("{} on {nodes}x{ppn} rank {rank}", library.name());
                if rank == root {
                    assert_eq!(reduced.as_ref().unwrap(), &want.reduce, "ireduce {ctx}");
                } else {
                    assert!(reduced.is_none(), "ireduce off-root ({ctx})");
                }
                assert_eq!(
                    outputs[0].as_ref().unwrap(),
                    &want.reduce_scatter[rank],
                    "ireduce_scatter {ctx}"
                );
                assert_eq!(
                    outputs[1].as_ref().unwrap(),
                    &want.scan[rank],
                    "iscan {ctx}"
                );
                assert_eq!(
                    outputs[2].as_ref().unwrap(),
                    &want.exscan[rank],
                    "iexscan {ctx}"
                );
            }
        }
    }
}

/// Entry style 3 — persistent: repeated starts with refreshed inputs, and
/// the starts never recompile (plan-cache miss counter pinned), for every
/// library × topology.
#[test]
fn persistent_reduction_family_matches_oracle_across_repeated_starts() {
    const ROUNDS: usize = 3;
    for library in Library::ALL {
        for (nodes, ppn) in TOPOLOGIES {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 5;
            let root = (world - 1) / 2;

            let results = World::run_with_profile(topo, library.profile(), |comm| {
                let rank = comm.rank();
                let mut reduce = comm.reduce_init(&payload(rank, block, 0), ReduceOp::Sum, root);
                let mut rs = comm.reduce_scatter_init(
                    &payload(rank, world * block, 0),
                    block,
                    ReduceOp::Sum,
                );
                let mut scan = comm.scan_init(&payload(rank, block, 0), ReduceOp::Sum);
                let mut exscan = comm.exscan_init(&payload(rank, block, 0), ReduceOp::Sum);
                let (_, misses_after_init) = comm.plan_stats();

                let mut rounds_out = Vec::new();
                for round in 0..ROUNDS {
                    if round > 0 {
                        reduce.write_send(&payload(rank, block, round));
                        rs.write_send(&payload(rank, world * block, round));
                        scan.write_send(&payload(rank, block, round));
                        exscan.write_send(&payload(rank, block, round));
                    }
                    reduce.start();
                    rs.start();
                    scan.start();
                    exscan.start();
                    // Wait in reverse start order.
                    let e = exscan.wait();
                    let s = scan.wait();
                    let r = rs.wait();
                    let d = reduce.wait();
                    rounds_out.push((d, r, s, e));
                }
                let (_, misses_after_rounds) = comm.plan_stats();
                assert_eq!(
                    misses_after_init, misses_after_rounds,
                    "persistent reduction starts must never recompile"
                );
                rounds_out
            })
            .unwrap();

            for round in 0..ROUNDS {
                let want = expected(world, block, ReduceOp::Sum, round);
                for (rank, rounds_out) in results.iter().enumerate() {
                    let ctx = format!(
                        "{} on {nodes}x{ppn} rank {rank} round {round}",
                        library.name()
                    );
                    let (d, r, s, e) = &rounds_out[round];
                    if rank == root {
                        assert_eq!(d.as_ref().unwrap(), &want.reduce, "reduce_init {ctx}");
                    } else {
                        assert!(d.is_none(), "reduce_init off-root ({ctx})");
                    }
                    assert_eq!(r, &want.reduce_scatter[rank], "reduce_scatter_init {ctx}");
                    assert_eq!(s, &want.scan[rank], "scan_init {ctx}");
                    assert_eq!(e, &want.exscan[rank], "exscan_init {ctx}");
                }
            }
        }
    }
}

fn shape(kind: CollectiveKind, block: usize, root: usize) -> CollectiveShape {
    CollectiveShape {
        kind,
        block,
        root,
        elem_size: 1,
        reduce: None,
        layout: None,
        compress: None,
    }
}

/// Entry style 4 — lowered plans: every reduction collective's schedule-
/// fidelity cluster plan validates and lowers op-for-op to the legacy
/// per-rank recording, for every library × topology.
#[test]
fn reduction_plan_lowering_matches_legacy_recording() {
    for library in Library::ALL {
        for (nodes, ppn) in [(2, 3), (3, 3), (5, 2)] {
            let topo = Topology::new(nodes, ppn);
            let profile = library.profile();
            let bytes = 64;
            let root = topo.world_size() - 1;
            let cases: Vec<(CollectiveShape, pip_mcoll::netsim::trace::Trace)> = vec![
                (
                    shape(CollectiveKind::Reduce, bytes, root),
                    dispatch::record_reduce(&profile, topo, bytes, root),
                ),
                (
                    shape(CollectiveKind::ReduceScatter, bytes, 0),
                    dispatch::record_reduce_scatter(&profile, topo, bytes),
                ),
                (
                    shape(CollectiveKind::Scan, bytes, 0),
                    dispatch::record_scan(&profile, topo, bytes),
                ),
                (
                    shape(CollectiveKind::Exscan, bytes, 0),
                    dispatch::record_exscan(&profile, topo, bytes),
                ),
            ];
            for (case, legacy) in cases {
                let plan = compile_cluster(&profile, topo, &case, Fidelity::Schedule);
                plan.validate().unwrap_or_else(|e| {
                    panic!("{} {:?} plan invalid: {e}", library.name(), case.kind)
                });
                let lowered = plan.to_trace(1);
                assert_eq!(
                    lowered,
                    legacy,
                    "{} {:?} on {nodes}x{ppn}: lowering diverges from legacy recording",
                    library.name(),
                    case.kind
                );
            }
        }
    }
}

/// Plan-cache key regression: distinct reduction shapes (different roots,
/// reduce_scatter vs allreduce of the same size) must never collide in
/// `PlanKey` or share a cache entry.
#[test]
fn distinct_reduction_shapes_never_collide_in_the_plan_cache() {
    let profile = Library::PipMColl.profile();
    let topo = Topology::new(2, 2);
    let shapes = [
        shape(CollectiveKind::Reduce, 8, 0),
        shape(CollectiveKind::Reduce, 8, 1),
        shape(CollectiveKind::ReduceScatter, 8, 0),
        shape(CollectiveKind::Allreduce, 8, 0),
        shape(CollectiveKind::Scan, 8, 0),
        shape(CollectiveKind::Exscan, 8, 0),
    ];
    // The keys themselves are pairwise distinct...
    for (i, a) in shapes.iter().enumerate() {
        for b in &shapes[i + 1..] {
            assert_ne!(
                PlanKey::new(&profile, topo, *a),
                PlanKey::new(&profile, topo, *b),
                "{a:?} and {b:?} alias one plan key"
            );
        }
    }
    // ...and a live cache keeps one entry per shape: all compiles are
    // misses, every repeat is a hit, and the entry count never merges.
    let mut cache = PlanCache::new();
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(cache.len(), shapes.len());
    assert_eq!(cache.stats(), (0, shapes.len() as u64));
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(cache.len(), shapes.len());
    assert_eq!(cache.stats(), (shapes.len() as u64, shapes.len() as u64));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized differential check: arbitrary block sizes (including
    /// non-power-of-two and sizes that do not divide across ppn chunks),
    /// arbitrary roots, Sum plus the non-invertible Min/Max, across every
    /// library on a randomly drawn topology.
    #[test]
    fn prop_reduction_family_matches_oracle(
        topo_idx in 0usize..TOPOLOGIES.len(),
        block in 1usize..24,
        root_seed in 0usize..64,
        op_idx in 0usize..3,
    ) {
        let (nodes, ppn) = TOPOLOGIES[topo_idx];
        let op = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max][op_idx];
        for library in Library::ALL {
            check_case(library, nodes, ppn, block, root_seed, op);
        }
    }
}

// ---------------------------------------------------------------------
// Typed differential harness
// ---------------------------------------------------------------------

/// Test-local value model: deterministic generation plus an equality that
/// absorbs combine-order rounding for floats (integers compare exactly; the
/// distributed algorithms are free to reassociate a float Sum/Prod, so those
/// compare within a relative epsilon, with NaN equal to NaN).
trait TestValue: Datatype + std::fmt::Debug {
    fn gen(seed: u32) -> Self;
    fn close(a: Self, b: Self) -> bool;
}

impl TestValue for i32 {
    fn gen(seed: u32) -> Self {
        let magnitude = (seed % 3) as i32 + 1;
        if seed % 7 < 3 {
            -magnitude
        } else {
            magnitude
        }
    }
    fn close(a: Self, b: Self) -> bool {
        a == b
    }
}

impl TestValue for u64 {
    fn gen(seed: u32) -> Self {
        (seed % 4) as u64 + 1
    }
    fn close(a: Self, b: Self) -> bool {
        a == b
    }
}

impl TestValue for f32 {
    fn gen(seed: u32) -> Self {
        ((seed % 16) as f32 - 7.5) * 0.25
    }
    fn close(a: Self, b: Self) -> bool {
        float_close(a as f64, b as f64, 1e-4)
    }
}

impl TestValue for f64 {
    fn gen(seed: u32) -> Self {
        ((seed % 32) as f64 - 15.5) * 0.125
    }
    fn close(a: Self, b: Self) -> bool {
        float_close(a, b, 1e-10)
    }
}

/// Relative-epsilon float comparison with NaN == NaN: the associativity
/// tolerance for reassociated float reductions.
fn float_close(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn typed_inputs<T: TestValue>(world: usize, len: usize, round: usize) -> Vec<Vec<T>> {
    (0..world)
        .map(|rank| {
            (0..len)
                .map(|i| T::gen((rank * 131 + i * 7 + round * 53) as u32))
                .collect()
        })
        .collect()
}

fn assert_close<T: TestValue>(got: &[T], want: &[T], ctx: &str) {
    assert_eq!(got.len(), want.len(), "length mismatch: {ctx}");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            T::close(*g, *w),
            "element {i} diverges: got {g:?}, want {w:?} ({ctx})"
        );
    }
}

/// Blocking typed entries — reduce, reduce_scatter, in-place allreduce, and
/// the by-value allreduce_t/scan_t/exscan_t — against the typed oracle, for
/// one `(T, op)` on one library × topology.
fn check_typed_case<T: TestValue>(
    library: Library,
    nodes: usize,
    ppn: usize,
    block: usize,
    root: usize,
    op: ReduceOp,
) {
    let topo = Topology::new(nodes, ppn);
    let world = topo.world_size();
    let root = root % world;
    let blocks: Vec<Vec<T>> = typed_inputs(world, block, 0);
    let vectors: Vec<Vec<T>> = typed_inputs(world, world * block, 0);
    let want_reduce = oracle::allreduce_t(&blocks, op);
    let want_rs = oracle::reduce_scatter_t(&vectors, world, op);
    let want_scan = oracle::scan_t(&blocks, op);
    let want_exscan = oracle::exscan_t(&blocks, op);

    let blocks_ref = &blocks;
    let vectors_ref = &vectors;
    let results = World::run_with_profile(topo, library.profile(), |comm| {
        let rank = comm.rank();
        let reduced = comm.reduce(&blocks_ref[rank], op, root);
        let scattered = comm.reduce_scatter(&vectors_ref[rank], block, op);
        let mut inplace = blocks_ref[rank].clone();
        comm.allreduce(&mut inplace, op);
        let byvalue = comm.allreduce_t(&blocks_ref[rank], op);
        let scanned = comm.scan_t(&blocks_ref[rank], op);
        let exclusive = comm.exscan_t(&blocks_ref[rank], op);
        (reduced, scattered, inplace, byvalue, scanned, exclusive)
    })
    .unwrap();

    for (rank, (reduced, scattered, inplace, byvalue, scanned, exclusive)) in
        results.iter().enumerate()
    {
        let ctx = format!(
            "{} {} {op:?} on {nodes}x{ppn} rank {rank} block {block} root {root}",
            library.name(),
            std::any::type_name::<T>(),
        );
        if rank == root {
            assert_close(reduced.as_deref().unwrap(), &want_reduce, &ctx);
        } else {
            assert!(reduced.is_none(), "reduce off-root must be None ({ctx})");
        }
        assert_close(scattered, &want_rs[rank], &ctx);
        assert_close(inplace, &want_reduce, &ctx);
        assert_close(byvalue, &want_reduce, &ctx);
        assert_close(scanned, &want_scan[rank], &ctx);
        assert_close(exclusive, &want_exscan[rank], &ctx);
    }
}

/// Non-blocking and persistent typed entries for one `(T, op)` — submitted
/// together, waited out of order; persistent handles restarted with
/// refreshed inputs and pinned against recompiles.
fn check_typed_async_case<T: TestValue>(
    library: Library,
    nodes: usize,
    ppn: usize,
    block: usize,
    op: ReduceOp,
) {
    const ROUNDS: usize = 2;
    let topo = Topology::new(nodes, ppn);
    let world = topo.world_size();
    let root = (world - 1) / 2;
    let blocks: Vec<Vec<Vec<T>>> = (0..ROUNDS).map(|r| typed_inputs(world, block, r)).collect();
    let blocks_ref = &blocks;

    let results = World::run_with_profile(topo, library.profile(), |comm| {
        let rank = comm.rank();

        // Non-blocking: all four in flight, waited in reverse order.
        let r_all = comm.iallreduce(&blocks_ref[0][rank], op);
        let r_reduce = comm.ireduce(&blocks_ref[0][rank], op, root);
        let r_scan = comm.iscan(&blocks_ref[0][rank], op);
        let r_exscan = comm.iexscan(&blocks_ref[0][rank], op);
        let nb_exscan = r_exscan.wait();
        let nb_scan = r_scan.wait();
        let nb_reduce = r_reduce.wait();
        let nb_all = r_all.wait();

        // Persistent: restart with round-dependent inputs, never recompile.
        let mut p_all = comm.allreduce_init(&blocks_ref[0][rank], op);
        let (_, misses_after_init) = comm.plan_stats();
        let mut persistent = Vec::new();
        for (round, round_blocks) in blocks_ref.iter().enumerate().take(ROUNDS) {
            if round > 0 {
                p_all.write_send(&round_blocks[rank]);
            }
            p_all.start();
            persistent.push(p_all.wait());
        }
        let (_, misses_after_rounds) = comm.plan_stats();
        assert_eq!(
            misses_after_init, misses_after_rounds,
            "persistent typed starts must never recompile"
        );
        (nb_all, nb_reduce, nb_scan, nb_exscan, persistent)
    })
    .unwrap();

    let want_all = oracle::allreduce_t(&blocks[0], op);
    let want_scan = oracle::scan_t(&blocks[0], op);
    let want_exscan = oracle::exscan_t(&blocks[0], op);
    for (rank, (nb_all, nb_reduce, nb_scan, nb_exscan, persistent)) in results.iter().enumerate() {
        let ctx = format!(
            "{} {} {op:?} async on {nodes}x{ppn} rank {rank}",
            library.name(),
            std::any::type_name::<T>(),
        );
        assert_close(nb_all, &want_all, &ctx);
        if rank == root {
            assert_close(nb_reduce.as_deref().unwrap(), &want_all, &ctx);
        } else {
            assert!(nb_reduce.is_none(), "ireduce off-root ({ctx})");
        }
        assert_close(nb_scan, &want_scan[rank], &ctx);
        assert_close(nb_exscan, &want_exscan[rank], &ctx);
        for (round, got) in persistent.iter().enumerate() {
            let want = oracle::allreduce_t(&blocks[round], op);
            assert_close(got, &want, &format!("{ctx} round {round}"));
        }
    }
}

/// Blocking typed grid: all four datatypes × all four operators × every
/// library on a mid-sized non-power-of-two topology.
#[test]
fn typed_blocking_family_matches_oracle_for_all_types_and_ops() {
    for library in Library::ALL {
        for op in ReduceOp::ALL {
            check_typed_case::<f32>(library, 2, 3, 5, 2, op);
            check_typed_case::<f64>(library, 2, 3, 5, 2, op);
            check_typed_case::<i32>(library, 2, 3, 5, 2, op);
            check_typed_case::<u64>(library, 2, 3, 5, 2, op);
        }
    }
}

/// Non-blocking + persistent typed grid on a smaller topology.
#[test]
fn typed_async_family_matches_oracle_for_all_types_and_ops() {
    for library in Library::ALL {
        for op in ReduceOp::ALL {
            check_typed_async_case::<f32>(library, 1, 4, 6, op);
            check_typed_async_case::<f64>(library, 1, 4, 6, op);
            check_typed_async_case::<i32>(library, 1, 4, 6, op);
            check_typed_async_case::<u64>(library, 1, 4, 6, op);
        }
    }
}

/// Large typed f64 allreduce/reduce_scatter crossing the Ring switch point:
/// the element-aligned ring chunking must hold when the per-rank payload is
/// past `LARGE_MESSAGE_THRESHOLD` and the element count does not divide by
/// the world size.
#[test]
fn typed_f64_large_messages_survive_the_ring_switch() {
    let (nodes, ppn) = (2, 3);
    let world = nodes * ppn;
    // An odd element count past the threshold: 4099 * 8 B > 32 KiB, and
    // 4099 % 6 != 0 so ring chunks are uneven.
    let count = 4099;
    assert!(count * 8 > pip_mcoll::model::selection::LARGE_MESSAGE_THRESHOLD);
    let inputs: Vec<Vec<f64>> = typed_inputs(world, count, 0);
    let want = oracle::allreduce_t(&inputs, ReduceOp::Sum);
    let inputs_ref = &inputs;
    for library in Library::ALL {
        let results =
            World::run_with_profile(Topology::new(nodes, ppn), library.profile(), |comm| {
                let mut buf = inputs_ref[comm.rank()].clone();
                comm.allreduce(&mut buf, ReduceOp::Sum);
                buf
            })
            .unwrap();
        for (rank, got) in results.iter().enumerate() {
            assert_close(
                got,
                &want,
                &format!("{} large f64 allreduce rank {rank}", library.name()),
            );
        }
    }
}

/// NaN differential: with a NaN planted in one rank's contribution, every
/// library × topology produces the identical, canonically propagated result
/// for Max and Min — bitwise, because the kernels canonicalize NaN.
#[test]
fn nan_inputs_reduce_identically_across_all_algorithms() {
    for op in [ReduceOp::Max, ReduceOp::Min] {
        for (nodes, ppn) in [(1, 4), (2, 3), (3, 3)] {
            let topo = Topology::new(nodes, ppn);
            let world = topo.world_size();
            let block = 6;
            let mut blocks: Vec<Vec<f64>> = typed_inputs(world, block, 0);
            // Plant NaNs on two ranks, one lane overlapping, one distinct.
            blocks[0][1] = f64::NAN;
            blocks[world - 1][1] = f64::NAN;
            blocks[world - 1][4] = f64::NAN;
            let want = oracle::allreduce_t(&blocks, op);
            assert!(want[1].is_nan() && want[4].is_nan());

            let blocks_ref = &blocks;
            let mut per_library: Vec<Vec<u64>> = Vec::new();
            for library in Library::ALL {
                let results = World::run_with_profile(topo, library.profile(), |comm| {
                    let mut buf = blocks_ref[comm.rank()].clone();
                    comm.allreduce(&mut buf, op);
                    buf
                })
                .unwrap();
                for (rank, got) in results.iter().enumerate() {
                    let ctx = format!("{} {op:?} on {nodes}x{ppn} rank {rank}", library.name());
                    assert_close(got, &want, &ctx);
                    assert!(got[1].is_nan() && got[4].is_nan(), "NaN lanes lost ({ctx})");
                }
                // Canonical NaN propagation makes the result bit-exact, so
                // every library must agree with every other bit for bit.
                per_library.push(results[0].iter().map(|v| v.to_bits()).collect());
            }
            for bits in &per_library[1..] {
                assert_eq!(
                    bits, &per_library[0],
                    "libraries disagree bitwise on NaN propagation ({nodes}x{ppn} {op:?})"
                );
            }
        }
    }
}

/// Plan-cache key regression for the typed layer: same kind, block, root and
/// element size, but a different datatype or operator, must produce distinct
/// `PlanKey`s and distinct cache entries — an f32-Sum plan must never serve
/// an i32-Max call.
#[test]
fn same_shape_different_type_or_op_never_aliases_a_plan() {
    let profile = Library::PipMColl.profile();
    let topo = Topology::new(2, 2);
    let ident = |kernel: ReduceKernel| kernel.ident();
    let mk = |reduce| CollectiveShape {
        kind: CollectiveKind::Allreduce,
        block: 32,
        root: 0,
        elem_size: 4,
        reduce: Some(reduce),
        layout: None,
        compress: None,
    };
    // All three shapes are 32 B of 4-byte elements; only the (type, op)
    // identity differs.
    let shapes = [
        mk(ident(ReduceKernel::of::<f32>(ReduceOp::Sum))),
        mk(ident(ReduceKernel::of::<i32>(ReduceOp::Sum))),
        mk(ident(ReduceKernel::of::<f32>(ReduceOp::Max))),
    ];
    for (i, a) in shapes.iter().enumerate() {
        for b in &shapes[i + 1..] {
            assert_ne!(
                PlanKey::new(&profile, topo, *a),
                PlanKey::new(&profile, topo, *b),
                "{a:?} and {b:?} alias one plan key"
            );
        }
    }
    let mut cache = PlanCache::new();
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(
        cache.len(),
        shapes.len(),
        "typed shapes merged in the cache"
    );
    assert_eq!(cache.stats(), (0, shapes.len() as u64));
}

/// Tentpole regression (the opaque plan-key aliasing hole): registered
/// user operators carry their minted identity into the plan key.  Two
/// distinct `Op`s of the same element width, and a builtin f32-Sum kernel
/// of that same width, must produce three pairwise-distinct keys and three
/// cache entries — before user-op identities existed, every opaque
/// reduction collapsed onto the `(kind, block, elem_size)` entry, so an
/// elem-size-4 user operator would have replayed the cached f32-Sum plan.
#[test]
fn user_operators_never_alias_builtins_or_each_other_in_the_plan_cache() {
    let profile = Library::PipMColl.profile();
    let topo = Topology::new(2, 2);
    let wrapping_add = |acc: &mut [u8], other: &[u8]| {
        for (a, b) in acc.iter_mut().zip(other) {
            *a = a.wrapping_add(*b);
        }
    };
    // Same closure body twice on purpose: identity comes from registration,
    // not from what the operator computes.
    let op_a = Op::create(4, wrapping_add);
    let op_b = Op::create(4, wrapping_add);
    let mk = |reduce| CollectiveShape {
        kind: CollectiveKind::Allreduce,
        block: 32,
        root: 0,
        elem_size: 4,
        reduce: Some(reduce),
        layout: None,
        compress: None,
    };
    let shapes = [
        mk(ReduceKernel::of::<f32>(ReduceOp::Sum).ident()),
        mk(op_a.ident()),
        mk(op_b.ident()),
    ];
    for (i, a) in shapes.iter().enumerate() {
        for b in &shapes[i + 1..] {
            assert_ne!(
                PlanKey::new(&profile, topo, *a),
                PlanKey::new(&profile, topo, *b),
                "{a:?} and {b:?} alias one plan key"
            );
        }
    }
    let mut cache = PlanCache::new();
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(
        cache.len(),
        shapes.len(),
        "user-op shapes merged in the cache"
    );
    assert_eq!(cache.stats(), (0, shapes.len() as u64));
    // Clones of a registered operator share its identity — and its plan.
    assert_eq!(op_a.ident(), op_a.clone().ident());
    cache.lookup_or_compile(&profile, topo, 0, &mk(op_a.clone().ident()));
    assert_eq!(cache.stats(), (1, shapes.len() as u64));
}

/// Derived-datatype regression: a strided allreduce and a contiguous one
/// of the *same packed byte count* must never share a plan — the layout
/// triple is part of the shape — while a contiguous layout normalizes away
/// (`Layout::contiguous` keys identically to no layout at all).
#[test]
fn strided_and_contiguous_allreduce_of_equal_packed_bytes_never_alias() {
    let profile = Library::PipMColl.profile();
    let topo = Topology::new(2, 2);
    let ident = ReduceKernel::of::<f32>(ReduceOp::Sum).ident();
    let mk = |layout| CollectiveShape {
        kind: CollectiveKind::Allreduce,
        block: 32,
        root: 0,
        elem_size: 4,
        reduce: Some(ident),
        layout,
        compress: None,
    };
    // All three move 8 f32 = 32 packed bytes; only the memory walk differs.
    let shapes = [
        mk(None),
        mk(Some(Layout::vector(4, 2, 3))),
        mk(Some(Layout::vector(2, 4, 6))),
    ];
    for (i, a) in shapes.iter().enumerate() {
        for b in &shapes[i + 1..] {
            assert_ne!(
                PlanKey::new(&profile, topo, *a),
                PlanKey::new(&profile, topo, *b),
                "{a:?} and {b:?} alias one plan key"
            );
        }
    }
    let mut cache = PlanCache::new();
    for s in &shapes {
        cache.lookup_or_compile(&profile, topo, 0, s);
    }
    assert_eq!(
        cache.len(),
        shapes.len(),
        "layout shapes merged in the cache"
    );

    // A contiguous layout is normalized away before keying: the request
    // paths pass `layout.filter(|l| !l.is_contiguous())`, so stride ==
    // blocklen and the no-layout form describe the same plan.
    let mut contiguous = vec![0u8; 32];
    let request = pip_mcoll::model::CollectiveRequest::Allreduce {
        buf: &mut contiguous,
        op: pip_mcoll::collectives::Reduction::Typed(ReduceKernel::of::<f32>(ReduceOp::Sum)),
        layout: Some(Layout::vector(4, 2, 2)),
        compress: None,
    };
    assert_eq!(CollectiveShape::of(&request, 4), mk(None));
}

/// Anonymous `Reduction::Opaque` closures have no identity, so the planned
/// dispatch path must refuse to cache them: the collective still computes
/// the right answer (direct execution), but the cache stays empty — no
/// entry a *different* same-width closure could ever replay.
#[test]
fn anonymous_opaque_reductions_bypass_the_plan_cache() {
    use pip_mcoll::collectives::comm::Comm as _;
    let topo = Topology::new(1, 4);
    let world = topo.world_size();
    let block = 8;
    let profile = Library::PipMColl.profile();
    let expected = oracle::allreduce(
        &(0..world).map(|r| payload(r, block, 0)).collect::<Vec<_>>(),
        oracle::wrapping_add_u8,
    );
    let results = pip_mcoll::runtime::Cluster::launch(topo, |ctx| {
        let comm = pip_mcoll::collectives::ThreadComm::new(ctx);
        let mut cache = PlanCache::new();
        let mut buf = payload(comm.rank(), block, 0);
        let combine = |acc: &mut [u8], other: &[u8]| {
            for (a, b) in acc.iter_mut().zip(other) {
                *a = a.wrapping_add(*b);
            }
        };
        dispatch::execute_planned(
            &profile,
            &comm,
            pip_mcoll::model::CollectiveRequest::Allreduce {
                buf: &mut buf,
                op: pip_mcoll::collectives::Reduction::Opaque {
                    elem_size: 1,
                    f: &combine,
                },
                layout: None,
                compress: None,
            },
            1 << 16,
            &mut cache,
        );
        (buf, cache.len(), cache.stats())
    })
    .unwrap();
    for (rank, (buf, entries, stats)) in results.iter().enumerate() {
        assert_eq!(buf, &expected, "opaque allreduce wrong at rank {rank}");
        assert_eq!(
            *entries, 0,
            "anonymous operator populated the plan cache at rank {rank}"
        );
        assert_eq!(*stats, (0, 0), "bypass must be neither hit nor miss");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized typed differential check: random type, operator, block
    /// size and root across every library on a drawn topology.  The f64 arm
    /// doubles as the associativity-tolerance check: the harness compares
    /// within a relative epsilon, never exactly, so reassociated sums pass
    /// while wrong contribution subsets still fail.
    #[test]
    fn prop_typed_reduction_family_matches_oracle(
        topo_idx in 0usize..TOPOLOGIES.len(),
        block in 1usize..16,
        root_seed in 0usize..64,
        op_idx in 0usize..4,
        type_idx in 0usize..4,
    ) {
        let (nodes, ppn) = TOPOLOGIES[topo_idx];
        let op = ReduceOp::ALL[op_idx];
        for library in Library::ALL {
            match type_idx {
                0 => check_typed_case::<f32>(library, nodes, ppn, block, root_seed, op),
                1 => check_typed_case::<f64>(library, nodes, ppn, block, root_seed, op),
                2 => check_typed_case::<i32>(library, nodes, ppn, block, root_seed, op),
                _ => check_typed_case::<u64>(library, nodes, ppn, block, root_seed, op),
            }
        }
    }
}
