//! Offline shim for `proptest`.
//!
//! A compact, deterministic property-testing engine exposing the subset of
//! the proptest API the workspace uses: the [`proptest!`] macro, integer
//! range and [`Just`] strategies, [`any`], [`collection::vec`],
//! [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!` and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * sampling is **deterministic** — the RNG is seeded from the test
//!   function's name, so failures reproduce without a persistence file;
//! * there is **no shrinking** — the panic message carries the case inputs
//!   via the assertion text instead;
//! * range strategies deliberately over-weight their endpooints (each bound
//!   is drawn with probability 1/8) so boundary bugs surface within a
//!   handful of cases.
//!
//! Swap in the real proptest by editing the workspace `Cargo.toml` only.

use std::marker::PhantomData;
use std::ops::Range;

/// Execution parameters for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: hash | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
///
/// Object-safe so heterogeneous strategies can be unified by [`prop_oneof!`].
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // i128 arithmetic so signed ranges and full-width unsigned
                // ranges never overflow while computing the span.
                let start = self.start as i128;
                let span = (self.end as i128 - start) as u64;
                // Over-weight the endpoints: boundary cases find off-by-one
                // bugs far faster than the uniform interior does.
                match rng.below(8) {
                    0 => self.start,
                    1 => (self.end as i128 - 1) as $t,
                    _ => (start + rng.below(span) as i128) as $t,
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy, selected via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T`, as `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

/// Boxes a strategy for [`Union`]; used by the [`prop_oneof!`] expansion.
pub fn boxed_strategy<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<E>` with a length drawn from `len`.
    pub struct VecStrategy<E> {
        element: E,
        len: Range<usize>,
    }

    // `len` is a concrete `Range<usize>` (not a generic length strategy) so
    // unsuffixed literals like `0..8192` infer to usize at the call site.
    pub fn vec<E: Strategy>(element: E, len: Range<usize>) -> VecStrategy<E> {
        VecStrategy { element, len }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Commonly imported items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds_and_hits_endpoints() {
        let mut rng = crate::TestRng::from_name("bounds");
        let strat = 3usize..17;
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..512 {
            let v = strat.sample(&mut rng);
            assert!((3..17).contains(&v));
            saw_low |= v == 3;
            saw_high |= v == 16;
        }
        assert!(saw_low && saw_high, "endpoint weighting broken");
    }

    proptest! {
        #[test]
        fn macro_smoke(len in 0usize..32, payload in collection::vec(any::<u8>(), 0..8), flag in prop_oneof![Just(true), Just(false)]) {
            prop_assert!(len < 32);
            prop_assert!(payload.len() < 8);
            prop_assert!(usize::from(flag) <= 1);
        }
    }
}
