//! Offline shim for `serde_derive`.
//!
//! The derives register `serde` as an inert helper attribute (so field
//! annotations like `#[serde(skip, default = "...")]` parse) and expand to
//! nothing.  The matching `vendor/serde` shim provides blanket trait
//! implementations, so bounds like `T: Serialize` are always satisfiable.
//! Replace both shims with the real crates when a registry is available.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
