//! Offline shim for `criterion`.
//!
//! Implements the subset of the criterion API the benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkId::from_parameter`], `sample_size`, `throughput` and
//! [`Bencher::iter`] — with a straightforward wall-clock measurement loop:
//! a short warm-up, then `sample_size` timed batches, reporting the median
//! per-iteration time (and throughput when configured) on stdout.
//!
//! No statistical analysis, no HTML reports, no comparison against saved
//! baselines; swap in the real criterion by editing the workspace
//! `Cargo.toml` only.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Units the measured time is normalized against in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Timing loop handed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    // Warm-up: find an iteration count that makes one batch measurable.
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size.max(1))
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) | Some(Throughput::BytesDecimal(bytes)) => {
            format!(
                " ({:.2} MiB/s)",
                bytes as f64 / median * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(elements)) => {
            format!(" ({:.2} Melem/s)", elements as f64 / median * 1e9 / 1e6)
        }
        None => String::new(),
    };
    println!("bench {label:<48} {median:>12.1} ns/iter{rate}");
}

/// Entry point owned by `criterion_main!`; hands out benchmark groups.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, 10, None, f);
        self
    }
}

/// A named set of related benchmarks sharing sample-size and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut criterion = Criterion::default();
        let mut calls = 0u64;
        let mut group = criterion.benchmark_group("shim_smoke");
        group.sample_size(2);
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| calls += 1)
        });
        group.finish();
        assert!(calls > 0);
    }
}
