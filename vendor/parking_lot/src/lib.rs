//! Offline shim for `parking_lot`.
//!
//! Implements the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`], [`Condvar`], [`RwLock`] with parking_lot's non-poisoning
//! semantics (a panic while holding a lock does not poison it; the next
//! locker simply proceeds) — on top of `std::sync`.  Performance is that of
//! std's locks, which is plenty for the simulated-cluster workloads; swap in
//! the real crate by editing the workspace `Cargo.toml` only.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock that, like `parking_lot::Mutex`, never poisons.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex::lock` this returns the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // `Option` so Condvar::wait can temporarily take the std guard.
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable matching `parking_lot::Condvar`: `wait` takes the
/// guard by `&mut` instead of by value.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Waits with a timeout; returns a result whose `timed_out()` reports
    /// whether the wait ended because the timeout elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock that, like `parking_lot::RwLock`, never poisons.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn locks_do_not_poison_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
