//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its parameter and
//! report types so they can be dumped to disk once a real serializer is
//! available, but nothing serializes yet and the build environment cannot
//! reach crates.io.  This shim keeps the derive annotations compiling:
//! the traits exist, are blanket-implemented for every type, and the derive
//! macros (from `vendor/serde_derive`) accept the `#[serde(...)]` helper
//! attributes and expand to nothing.
//!
//! Swapping in the real serde is a one-line change in the workspace
//! `Cargo.toml`; no source file needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::DeserializeOwned;
}
