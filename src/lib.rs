//! # pip-mcoll
//!
//! Facade crate for the PiP-MColl reproduction (Huang et al., HPDC '23:
//! *Accelerating MPI Collectives with Process-in-Process-based Multi-object
//! Techniques*).
//!
//! The workspace implements, from scratch:
//!
//! * a Process-in-Process substrate ([`runtime`]): tasks sharing one address
//!   space, exposed memory regions, intra-node synchronization and a
//!   tag-matching fabric;
//! * the intra-node data-movement mechanisms the paper compares against —
//!   POSIX shared memory (double copy), CMA, XPMEM — plus PiP direct copy and
//!   a NIC model, each with a calibrated cost model ([`transport`]);
//! * a discrete-event cluster simulator ([`netsim`]) that replays collective
//!   communication traces against those cost models at the paper's scale
//!   (128 nodes × 18 processes per node);
//! * the collective algorithms ([`collectives`]): the classical baselines
//!   (binomial tree, Bruck, recursive doubling, ring, single-leader
//!   hierarchical) and the PiP-MColl multi-object algorithms;
//! * an MPI-like core library ([`core`]) exposing communicators, datatypes,
//!   point-to-point and collective operations;
//! * comparator library presets ([`model`]) reproducing the algorithm and
//!   transport choices of Open MPI, Intel MPI, MVAPICH2, PiP-MPICH and
//!   PiP-MColl.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduction of every figure in the paper.

pub use pip_collectives as collectives;
pub use pip_mcoll_core as core;
pub use pip_mpi_model as model;
pub use pip_netsim as netsim;
pub use pip_runtime as runtime;
pub use pip_transport as transport;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use pip_collectives::comm::{Comm, ThreadComm, TraceComm};
    pub use pip_mcoll_core::comm::Communicator;
    pub use pip_mcoll_core::datatype::{Datatype, DtypeId, Layout, Op, ReduceKernel, ReduceOp};
    pub use pip_mcoll_core::world::World;
    pub use pip_mpi_model::{Library, LibraryProfile};
    pub use pip_netsim::cluster::ClusterSpec;
    pub use pip_netsim::network::SimulationReport;
    pub use pip_runtime::{Cluster, TaskCtx, Topology};
}
